//! Criterion microbenches: substrate performance plus design-choice
//! ablations called out in DESIGN.md (adapter cross-layer carry, infuser
//! gating overhead, quantization throughput).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use infuserki_core::{InfuserKiConfig, InfuserKiMethod};
use infuserki_kg::{synth_umls, UmlsConfig};
use infuserki_nn::{sampler, ModelConfig, NoHook, TransformerLm};
use infuserki_tensor::{kernels, Tape};
use infuserki_text::{McqBuilder, Tokenizer};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let a = infuserki_tensor::init::normal(64, 64, 1.0, &mut rng);
    let b = infuserki_tensor::init::normal(64, 192, 1.0, &mut rng);
    c.bench_function("matmul_64x64x192", |bench| {
        bench.iter(|| kernels::matmul(std::hint::black_box(&a), std::hint::black_box(&b)))
    });
    c.bench_function("matmul_bt_64x192", |bench| {
        let bt = b.transposed();
        bench.iter(|| kernels::matmul_bt(std::hint::black_box(&a), std::hint::black_box(&bt)))
    });
}

/// Blocked-kernel vs seed-kernel square matmuls at 64–512 dims: the numbers
/// behind the blocking design notes in `kernels.rs`.
fn bench_matmul_blocked_vs_seed(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for dim in [64usize, 128, 256, 512] {
        let a = infuserki_tensor::init::normal(dim, dim, 1.0, &mut rng);
        let b = infuserki_tensor::init::normal(dim, dim, 1.0, &mut rng);
        c.bench_function(&format!("matmul_{dim}x{dim}x{dim}"), |bench| {
            bench.iter(|| kernels::matmul(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        c.bench_function(&format!("matmul_{dim}x{dim}x{dim}_seed"), |bench| {
            bench.iter(|| {
                kernels::reference::matmul(std::hint::black_box(&a), std::hint::black_box(&b))
            })
        });
    }
    // The transposed-operand products at a representative mid size.
    let a = infuserki_tensor::init::normal(256, 256, 1.0, &mut rng);
    let b = infuserki_tensor::init::normal(256, 256, 1.0, &mut rng);
    c.bench_function("matmul_bt_256x256x256", |bench| {
        bench.iter(|| kernels::matmul_bt(std::hint::black_box(&a), std::hint::black_box(&b)))
    });
    c.bench_function("matmul_bt_256x256x256_seed", |bench| {
        bench.iter(|| {
            kernels::reference::matmul_bt(std::hint::black_box(&a), std::hint::black_box(&b))
        })
    });
    c.bench_function("matmul_at_256x256x256", |bench| {
        bench.iter(|| kernels::matmul_at(std::hint::black_box(&a), std::hint::black_box(&b)))
    });
    c.bench_function("matmul_at_256x256x256_seed", |bench| {
        bench.iter(|| {
            kernels::reference::matmul_at(std::hint::black_box(&a), std::hint::black_box(&b))
        })
    });
    // Allocation-free accumulate variant (the backward-pass hot path shape).
    let mut out = infuserki_tensor::Matrix::zeros(256, 256);
    c.bench_function("matmul_into_acc_256x256x256", |bench| {
        bench.iter(|| {
            kernels::matmul_into(
                std::hint::black_box(&a),
                std::hint::black_box(&b),
                &mut out,
                true,
            )
        })
    });
}

fn bench_softmax(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let x = infuserki_tensor::init::normal(48, 48, 1.0, &mut rng);
    c.bench_function("softmax_rows_48x48", |bench| {
        bench.iter(|| kernels::softmax_rows(std::hint::black_box(&x)))
    });
}

fn small_model() -> TransformerLm {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    TransformerLm::new(
        ModelConfig {
            vocab_size: 512,
            ..ModelConfig::default()
        },
        &mut rng,
    )
}

fn bench_forward(c: &mut Criterion) {
    let model = small_model();
    let tokens: Vec<usize> = (0..40).map(|i| i % 512).collect();
    c.bench_function("lm_forward_seq40", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new();
            model.forward(std::hint::black_box(&tokens), &NoHook, &mut tape)
        })
    });
}

fn bench_forward_backward(c: &mut Criterion) {
    let model = small_model();
    let tokens: Vec<usize> = (0..40).map(|i| i % 512).collect();
    let targets: Vec<usize> = (0..40).map(|i| (i + 1) % 512).collect();
    c.bench_function("lm_forward_backward_seq40", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new();
            let loss = model.lm_loss(&tokens, &targets, &NoHook, &mut tape);
            tape.backward(loss);
            tape.grads()
        })
    });
}

/// Ablation: adapter + infuser overhead on top of the plain forward — the
/// cost of the method's extra machinery per inference.
fn bench_adapter_overhead(c: &mut Criterion) {
    let model = small_model();
    let method = InfuserKiMethod::new(InfuserKiConfig::for_model(model.n_layers()), &model, 18);
    let mut no_gate_cfg = InfuserKiConfig::for_model(model.n_layers());
    no_gate_cfg.ablation.use_infuser = false;
    let ungated = InfuserKiMethod::new(no_gate_cfg, &model, 18);
    let tokens: Vec<usize> = (0..40).map(|i| i % 512).collect();
    c.bench_function("forward_with_infuserki_hook", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new();
            model.forward(std::hint::black_box(&tokens), &method.hook(), &mut tape)
        })
    });
    c.bench_function("forward_with_ungated_adapters", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new();
            model.forward(std::hint::black_box(&tokens), &ungated.hook(), &mut tape)
        })
    });
}

/// Incremental engine vs full recompute: 64-token greedy generation from a
/// 16-token prompt through the KV-cached path (`prefill` + `decode_step`)
/// and the pre-cache reference path (full forward per emitted token). The
/// acceptance target is a ≥3× cached speedup on this workload.
fn bench_generation_cached_vs_uncached(c: &mut Criterion) {
    let model = small_model();
    let prompt: Vec<usize> = (0..16).map(|i| (i * 5 + 1) % 512).collect();
    c.bench_function("greedy_decode_64_cached", |bench| {
        bench.iter(|| {
            sampler::greedy_decode(&model, &NoHook, std::hint::black_box(&prompt), 64, None)
        })
    });
    c.bench_function("greedy_decode_64_uncached", |bench| {
        bench.iter(|| {
            sampler::greedy_decode_uncached(
                &model,
                &NoHook,
                std::hint::black_box(&prompt),
                64,
                None,
            )
        })
    });
}

/// The two phases of cached inference in isolation: prefill throughput over
/// a 40-token prompt, and single-token decode latency against that cache.
fn bench_prefill_and_decode_step(c: &mut Criterion) {
    let model = small_model();
    let tokens: Vec<usize> = (0..40).map(|i| i % 512).collect();
    c.bench_function("prefill_seq40", |bench| {
        bench.iter(|| model.prefill(std::hint::black_box(&tokens), &NoHook))
    });
    let (cache, _) = model.prefill(&tokens, &NoHook);
    c.bench_function("decode_step_after_seq40", |bench| {
        bench.iter_batched(
            || cache.fork(),
            |mut cache| model.decode_step(7, &NoHook, &mut cache),
            BatchSize::SmallInput,
        )
    });
}

/// MCQ option scoring: the shared-prefix cached scorer (prefill the question
/// once, score four completions from forked caches) vs the pre-cache
/// reference (one full forward per option).
fn bench_mcq_scoring(c: &mut Criterion) {
    let model = small_model();
    let prompt: Vec<usize> = (0..32).map(|i| (i * 3 + 2) % 512).collect();
    let options: Vec<Vec<usize>> = vec![vec![5, 6], vec![7, 8], vec![9, 10], vec![11, 12]];
    c.bench_function("score_4_options_cached", |bench| {
        bench.iter(|| {
            sampler::score_options(&model, &NoHook, std::hint::black_box(&prompt), &options)
        })
    });
    c.bench_function("score_4_options_uncached", |bench| {
        bench.iter(|| {
            sampler::score_options_uncached(
                &model,
                &NoHook,
                std::hint::black_box(&prompt),
                &options,
            )
        })
    });
}

/// Batched greedy decode throughput: 32 new tokens per sequence from 16-token
/// prompts at batch sizes 1/4/8/16, plus the loop-of-8 single-sequence
/// reference. Tokens/sec scales with batch size because the projections and
/// the LM head amortize the weight traffic over the whole batch; the
/// acceptance target is ≥2× the looped reference at batch 8.
fn bench_batched_generation(c: &mut Criterion) {
    let model = small_model();
    let prompt_of =
        |s: usize| -> Vec<usize> { (0..16).map(|i| (i * 5 + s * 11 + 1) % 512).collect() };
    for batch in [1usize, 4, 8, 16] {
        let prompts: Vec<Vec<usize>> = (0..batch).map(prompt_of).collect();
        c.bench_function(&format!("greedy_decode_32_batch{batch}"), |bench| {
            bench.iter(|| {
                sampler::greedy_decode_batch(
                    &model,
                    &NoHook,
                    std::hint::black_box(&prompts),
                    32,
                    None,
                )
            })
        });
    }
    let prompts: Vec<Vec<usize>> = (0..8).map(prompt_of).collect();
    c.bench_function("greedy_decode_32_loop8_single", |bench| {
        bench.iter(|| {
            prompts
                .iter()
                .map(|p| sampler::greedy_decode(&model, &NoHook, std::hint::black_box(p), 32, None))
                .collect::<Vec<_>>()
        })
    });
}

/// Batched MCQ scoring throughput: questions/sec at batch sizes 1/4/8/16
/// (32-token prompts, four 2-token options each) vs the loop-of-8
/// single-question reference. Acceptance target: ≥2× at batch 8.
fn bench_batched_mcq_scoring(c: &mut Criterion) {
    let model = small_model();
    let prompt_of =
        |q: usize| -> Vec<usize> { (0..32).map(|i| (i * 3 + q * 7 + 2) % 512).collect() };
    let options: Vec<Vec<usize>> = vec![vec![5, 6], vec![7, 8], vec![9, 10], vec![11, 12]];
    for batch in [1usize, 4, 8, 16] {
        let prompts: Vec<Vec<usize>> = (0..batch).map(prompt_of).collect();
        let per_q: Vec<&[Vec<usize>]> = (0..batch).map(|_| options.as_slice()).collect();
        c.bench_function(&format!("mcq_score_batch{batch}"), |bench| {
            bench.iter(|| {
                sampler::score_options_batch(
                    &model,
                    &NoHook,
                    std::hint::black_box(&prompts),
                    &per_q,
                )
            })
        });
    }
    let prompts: Vec<Vec<usize>> = (0..8).map(prompt_of).collect();
    // Shared-prefix loop: one `score_options` call per question. Not a
    // single-sequence baseline — `score_options` already branches the prompt
    // cache into one sequence per option (the batch engine at batch 4), so
    // on one core this loop sits at compute parity with `batch8`.
    c.bench_function("mcq_score_loop8_forked", |bench| {
        bench.iter(|| {
            prompts
                .iter()
                .map(|p| sampler::score_options(&model, &NoHook, std::hint::black_box(p), &options))
                .collect::<Vec<_>>()
        })
    });
    // True single-sequence loop: every (prompt ∥ option) pair prefilled as
    // its own sequence, no cache sharing or branching anywhere — the
    // strongest scorer expressible without the multi-sequence cache.
    c.bench_function("mcq_score_loop8_single_seq", |bench| {
        bench.iter(|| {
            prompts
                .iter()
                .map(|p| {
                    options
                        .iter()
                        .map(|opt| {
                            let p = std::hint::black_box(p);
                            let mut seq = p.clone();
                            seq.extend_from_slice(&opt[..opt.len() - 1]);
                            let (_cache, logits) = model.prefill(&seq, &NoHook);
                            let lp = kernels::log_softmax_rows(
                                &logits.slice_rows(p.len() - 1, seq.len()),
                            );
                            opt.iter()
                                .enumerate()
                                .map(|(i, &t)| lp.get(i, t))
                                .sum::<f32>()
                        })
                        .collect::<Vec<f32>>()
                })
                .collect::<Vec<_>>()
        })
    });
}

/// End-to-end MCQ answering — the knowledge-detection path (§3.2): format
/// the prompt, greedy-decode an answer, extract the chosen option — over the
/// real synthetic bank, at batch sizes 1/4/8/16 vs the loop-of-8
/// single-question reference. Answering is decode-dominated (a handful of
/// single-token steps per question), so whole-batch decode steps amortize
/// the per-step cost the loop pays once per sequence per token.
fn bench_mcq_answering(c: &mut Criterion) {
    let store = synth_umls(&UmlsConfig::with_triplets(60, 4));
    let triples = store.triples().to_vec();
    let bank = infuserki_core::McqBank::build(&store, &triples, 9);
    let mut lines: Vec<String> = store.entity_names().map(str::to_string).collect();
    for r in store.relation_names() {
        lines.extend(infuserki_text::templates::TemplateSet::vocabulary_lines(r));
    }
    lines.extend(infuserki_text::prompts::vocabulary_lines());
    let tok = Tokenizer::build(lines.iter().map(String::as_str));
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let model = TransformerLm::new(
        ModelConfig {
            vocab_size: tok.vocab_size(),
            ..ModelConfig::default()
        },
        &mut rng,
    );
    let mcqs = bank.template(0);
    for batch in [1usize, 4, 8, 16] {
        c.bench_function(&format!("mcq_answer_batch{batch}"), |bench| {
            bench.iter(|| {
                infuserki_core::answer_mcq_batch(
                    &model,
                    &NoHook,
                    &tok,
                    std::hint::black_box(&mcqs[..batch]),
                )
            })
        });
    }
    c.bench_function("mcq_answer_loop8_single", |bench| {
        bench.iter(|| {
            mcqs[..8]
                .iter()
                .map(|m| infuserki_core::answer_mcq(&model, &NoHook, &tok, std::hint::black_box(m)))
                .collect::<Vec<_>>()
        })
    });
}

fn bench_kg_queries(c: &mut Criterion) {
    let store = synth_umls(&UmlsConfig::with_triplets(2500, 3));
    let rel = store.relation_ids()[0];
    c.bench_function("kg_tail_pool_2500", |bench| {
        bench.iter(|| store.tail_pool(std::hint::black_box(rel)))
    });
    let head = store.triples()[0].head;
    c.bench_function("kg_triples_of_head", |bench| {
        bench.iter(|| store.triples_of_head(std::hint::black_box(head)))
    });
}

fn bench_mcq_generation(c: &mut Criterion) {
    let store = synth_umls(&UmlsConfig::with_triplets(500, 4));
    let builder = McqBuilder::new(&store);
    let triple = store.triples()[0];
    c.bench_function("mcq_build_one", |bench| {
        bench.iter_batched(
            || ChaCha8Rng::seed_from_u64(9),
            |mut rng| builder.build(std::hint::black_box(triple), 0, &mut rng),
            BatchSize::SmallInput,
        )
    });
}

fn bench_quantization(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let w = infuserki_tensor::init::normal(64, 192, 0.05, &mut rng);
    c.bench_function("quantize_dequantize_64x192", |bench| {
        bench.iter_batched(
            || w.clone(),
            |mut m| {
                infuserki_baselines::qlora::quantize_dequantize(m.data_mut(), 64);
                m
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_tokenizer(c: &mut Criterion) {
    let tok = Tokenizer::build(["question : what is the finding site of chronic cardiopathy ? options : (a) x (b) y (c) z (d) w answer :"]);
    let text = "question : what is the finding site of chronic cardiopathy ? options : (a) x (b) y (c) z (d) w answer :";
    c.bench_function("tokenizer_encode_prompt", |bench| {
        bench.iter(|| tok.encode_strict(std::hint::black_box(text)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_matmul, bench_matmul_blocked_vs_seed, bench_softmax,
              bench_forward, bench_forward_backward,
              bench_adapter_overhead, bench_generation_cached_vs_uncached,
              bench_prefill_and_decode_step, bench_mcq_scoring,
              bench_batched_generation, bench_batched_mcq_scoring,
              bench_mcq_answering, bench_kg_queries, bench_mcq_generation,
              bench_quantization, bench_tokenizer
}
criterion_main!(benches);
