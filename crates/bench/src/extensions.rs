//! Extension experiments beyond the paper's tables (DESIGN.md §4, row "ext"):
//!
//! * **GRACE** (related-work baseline): hard ε-ball deferral vs. InfuserKI's
//!   soft infuser gate, same NR/RR columns;
//! * **classic forgetting mitigations** (EWC / replay / distillation on full
//!   fine-tuning) as yardsticks for intra-task forgetting;
//! * **2-hop compositionality**: does triple-by-triple integration compose
//!   into multi-hop answers (MetaQA's 2-hop split motivates this).

use std::fmt::Write as _;

use infuserki_baselines::grace::{Grace, GraceConfig};
use infuserki_baselines::mitigation::{
    train_full_ft_distill, train_full_ft_ewc, train_full_ft_replay,
};
use infuserki_core::dataset::qa_sample;
use infuserki_core::{train_infuserki, GateInput, InfuserKiConfig, InfuserKiMethod};
use infuserki_eval::downstream::{build_two_hop_items, eval_two_hop};
use infuserki_eval::evaluate_method;
use infuserki_eval::world::{Domain, WorldConfig};
use infuserki_nn::{LmSample, NoHook};
use infuserki_text::templates::SEEN_TEMPLATES;

use crate::cli::Args;
use crate::runner::{prepare, Prepared};

fn known_samples(p: &Prepared) -> Vec<LmSample> {
    p.known
        .iter()
        .flat_map(|&i| {
            SEEN_TEMPLATES
                .iter()
                .map(move |&tpl| qa_sample(p.world.bank.mcq(tpl, i), &p.world.tokenizer))
        })
        .collect()
}

/// Runs the extension suite; returns the report text.
pub fn extensions(args: Args) -> String {
    let n = args.scale.pick(120, 300, 2500);
    let p = prepare(&WorldConfig::new(Domain::Umls, n, args.seed));
    let w = &p.world;
    let known_qa = known_samples(&p);
    let tc = infuserki_core::TrainConfig::default();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Extensions — GRACE, classic mitigations, 2-hop compositionality ({n} triplets)"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>5} {:>5} {:>9}",
        "Method", "NR", "RR", "F1_Unseen"
    );

    let eval_and_row = |name: &str,
                        model: &infuserki_nn::TransformerLm,
                        hook: &dyn infuserki_nn::LayerHook,
                        out: &mut String| {
        let e = evaluate_method(model, hook, &w.tokenizer, &w.bank, &p.known, &p.unknown);
        let _ = writeln!(
            out,
            "{name:<22} {:>5.2} {:>5.2} {:>9.2}",
            e.nr, e.rr, e.f1_unseen
        );
        e
    };

    // InfuserKI reference row.
    eprintln!("[ext] training InfuserKI…");
    let mut ik = InfuserKiMethod::new(
        InfuserKiConfig::for_model(w.base.n_layers()),
        &w.base,
        w.store.n_relations(),
    );
    train_infuserki(&w.base, &mut ik, &p.data, &tc);
    let ik_eval = eval_and_row("InfuserKI", &w.base, &ik.hook(), &mut out);

    // GRACE: sequential edits of the unknown facts.
    eprintln!("[ext] applying GRACE edits…");
    let mut grace = Grace::new(GraceConfig::for_model(w.base.n_layers()), &w.base);
    let edits: Vec<LmSample> = p
        .unknown
        .iter()
        .map(|&i| qa_sample(w.bank.mcq(0, i), &w.tokenizer))
        .collect();
    grace.apply_edits(&w.base, &edits);
    eval_and_row(
        &format!("GRACE ({} entries)", grace.len()),
        &w.base,
        &grace,
        &mut out,
    );

    // Design ablation: gate reads the sublayer output instead of input.
    eprintln!("[ext] training InfuserKI (gate on FFN output)…");
    let mut gate_out_cfg = InfuserKiConfig::for_model(w.base.n_layers());
    gate_out_cfg.gate_input = GateInput::SublayerOut;
    let mut ik_out = InfuserKiMethod::new(gate_out_cfg, &w.base, w.store.n_relations());
    train_infuserki(&w.base, &mut ik_out, &p.data, &tc);
    eval_and_row(
        "InfuserKI (gate=FFN-out)",
        &w.base,
        &ik_out.hook(),
        &mut out,
    );

    // Classic mitigations over full fine-tuning.
    let new_qa: Vec<LmSample> = p
        .unknown
        .iter()
        .flat_map(|&i| {
            SEEN_TEMPLATES
                .iter()
                .map(move |&tpl| qa_sample(w.bank.mcq(tpl, i), &w.tokenizer))
        })
        .collect();
    let epochs = tc.epochs_qa.min(6);

    eprintln!("[ext] full FT + EWC…");
    let mut ewc_model = w.base.clone();
    train_full_ft_ewc(
        &mut ewc_model,
        &new_qa,
        &known_qa,
        50.0,
        epochs,
        tc.lr,
        tc.batch,
        0,
    );
    eval_and_row("FullFT + EWC", &ewc_model, &NoHook, &mut out);

    eprintln!("[ext] full FT + replay…");
    let mut replay_model = w.base.clone();
    train_full_ft_replay(
        &mut replay_model,
        &new_qa,
        &known_qa,
        0.5,
        epochs,
        tc.lr,
        tc.batch,
        0,
    );
    eval_and_row("FullFT + replay", &replay_model, &NoHook, &mut out);

    eprintln!("[ext] full FT + distillation…");
    let mut distill_model = w.base.clone();
    let known_prompts: Vec<LmSample> = known_qa.iter().take(60).cloned().collect();
    train_full_ft_distill(
        &mut distill_model,
        &new_qa,
        &known_prompts,
        2.0,
        epochs,
        tc.lr,
        tc.batch,
        0,
    );
    eval_and_row("FullFT + distill", &distill_model, &NoHook, &mut out);

    // 2-hop compositionality.
    let items = build_two_hop_items(&w.store, 150);
    let base_2hop = eval_two_hop(&w.base, &NoHook, &w.tokenizer, &items);
    let ik_2hop = eval_two_hop(&w.base, &ik.hook(), &w.tokenizer, &items);
    let _ = writeln!(
        out,
        "\n2-hop compositional QA (token F1 over {} paths): vanilla {base_2hop:.2} → InfuserKI {ik_2hop:.2}",
        items.len()
    );
    let _ = writeln!(
        out,
        "reference: InfuserKI NR {:.2} / RR {:.2} on the same world",
        ik_eval.nr, ik_eval.rr
    );

    // Sequential-edit scaling (GRACE): RR as a function of edit count —
    // the "limited number of edits" failure mode of model editors.
    let mut grace2 = Grace::new(GraceConfig::for_model(w.base.n_layers()), &w.base);
    let _ = writeln!(out, "\nGRACE sequential-edit scaling (edits → NR, RR):");
    let checkpoints = [p.unknown.len() / 4, p.unknown.len() / 2, p.unknown.len()];
    let mut applied = 0usize;
    for &target in &checkpoints {
        for &i in p.unknown.iter().take(target).skip(applied) {
            grace2.apply_edit(&w.base, &qa_sample(w.bank.mcq(0, i), &w.tokenizer));
        }
        applied = target;
        let e = evaluate_method(
            &w.base,
            &grace2,
            &w.tokenizer,
            &w.bank,
            &p.known,
            &p.unknown,
        );
        let _ = writeln!(out, "  {applied:>4} edits: NR {:.2}  RR {:.2}", e.nr, e.rr);
    }

    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/extensions.txt", &out);
    out
}
