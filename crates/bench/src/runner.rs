//! The shared experiment runner: world → detection → per-method integration
//! → NR/RR/F1/downstream, producing a paper-style table.

use std::time::Instant;

use infuserki_baselines::calinet::{Calinet, CalinetConfig};
use infuserki_baselines::lora::{LoraConfig, LoraMethod};
use infuserki_baselines::prefix::{PrefixConfig, PrefixTuning};
use infuserki_baselines::qlora::{quantize_model, QuantConfig};
use infuserki_baselines::tpatcher::{TPatcher, TPatcherConfig};
use infuserki_baselines::{train_patched, VisitTrainable};
use infuserki_core::dataset::{qa_sample, KiDataset};
use infuserki_core::detect::detect_unknown;
use infuserki_core::{train_infuserki, InfuserKiConfig, InfuserKiMethod, Placement, TrainConfig};
use infuserki_eval::downstream::{
    build_one_hop_items, build_yesno_items, eval_one_hop, eval_yesno, sample_downstream_triples,
};
use infuserki_eval::world::{build_world, Domain, World, WorldConfig};
use infuserki_eval::{evaluate_method, MethodEval};
use infuserki_nn::{LayerHook, LmSample, NoHook, TransformerLm};
use infuserki_text::templates::SEEN_TEMPLATES;
use serde::{Deserialize, Serialize};

/// A method to run in an experiment.
#[derive(Debug, Clone, PartialEq)]
pub enum MethodKind {
    /// The unmodified base model (first row of every table).
    Vanilla,
    /// CALINET (model editing, single top-region FFN adapter).
    Calinet,
    /// T-Patcher (model editing, last-FFN patch neurons).
    TPatcher,
    /// Prefix tuning.
    PrefixTuning,
    /// LoRA on attention q/v.
    Lora,
    /// 4-bit quantized base + LoRA.
    QLora,
    /// InfuserKI with the given config (paper-default via
    /// [`ExperimentConfig::infuserki_default`]).
    InfuserKi(InfuserKiConfig),
}

impl MethodKind {
    /// Display name matching the paper's rows.
    pub fn name(&self) -> String {
        match self {
            MethodKind::Vanilla => "Vanilla".into(),
            MethodKind::Calinet => "CALINET".into(),
            MethodKind::TPatcher => "T-Patcher".into(),
            MethodKind::PrefixTuning => "Prefix Tuning".into(),
            MethodKind::Lora => "LoRA".into(),
            MethodKind::QLora => "QLoRA".into(),
            MethodKind::InfuserKi(cfg) => {
                let a = cfg.ablation;
                if !a.use_infuser {
                    "InfuserKI-w/o-Ro".into()
                } else if !a.infuser_pretrain {
                    "InfuserKI-w/o-RL".into()
                } else if !a.use_rc {
                    "InfuserKI-w/o-RC".into()
                } else {
                    "InfuserKI (Ours)".into()
                }
            }
        }
    }
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// World (KG + base model) configuration.
    pub world: WorldConfig,
    /// Methods to run, in row order.
    pub methods: Vec<MethodKind>,
    /// Training schedule shared by every method.
    pub train: TrainConfig,
    /// Number of downstream evaluation items.
    pub downstream_n: usize,
}

impl ExperimentConfig {
    /// The standard 7-row comparison (Tables 1–3) for a world.
    pub fn standard(world: WorldConfig) -> Self {
        let ik = InfuserKiConfig::for_model(world.n_layers);
        ExperimentConfig {
            world,
            methods: vec![
                MethodKind::Vanilla,
                MethodKind::Calinet,
                MethodKind::TPatcher,
                MethodKind::PrefixTuning,
                MethodKind::Lora,
                MethodKind::QLora,
                MethodKind::InfuserKi(ik),
            ],
            train: TrainConfig::default(),
            downstream_n: 150,
        }
    }

    /// Paper-default InfuserKI config for this experiment's model depth.
    pub fn infuserki_default(&self) -> InfuserKiConfig {
        InfuserKiConfig::for_model(self.world.n_layers)
    }
}

/// One method's results (a table row plus bookkeeping).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodResult {
    /// Row name.
    pub name: String,
    /// NR/RR/F1 metrics.
    pub eval: MethodEval,
    /// Downstream-task F1 (PubMedQA-sim or 1-hop QA).
    pub downstream: f32,
    /// Wall-clock training seconds.
    pub train_secs: f32,
    /// Trainable parameters introduced by the method.
    pub extra_params: usize,
}

/// A full experiment's results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment title (e.g. "Table 1 — UMLS 2.5k-scale").
    pub title: String,
    /// KG triplet count actually used.
    pub n_triplets: usize,
    /// Detection split sizes: (known, unknown).
    pub detection: (usize, usize),
    /// One row per method.
    pub rows: Vec<MethodResult>,
}

impl ExperimentReport {
    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "## {} ({} triplets; detection: {} known / {} unknown)\n\n",
            self.title, self.n_triplets, self.detection.0, self.detection.1
        ));
        out.push_str(&format!(
            "{:<16} {:>5} {:>5}  {:>5} {:>5}  {:>5} {:>5} {:>5}  {:>9} {:>10}\n",
            "Method",
            "NR",
            "RR",
            "F1_T1",
            "F1_T2",
            "F1_T3",
            "F1_T4",
            "F1_T5",
            "F1_Unseen",
            "Downstream"
        ));
        let fmt = |v: f32| {
            if v.is_nan() {
                "    -".to_string()
            } else {
                format!("{v:5.2}")
            }
        };
        for r in &self.rows {
            out.push_str(&format!(
                "{:<16} {} {}  {} {}  {} {} {}  {:>9} {:>10}\n",
                r.name,
                fmt(r.eval.nr),
                fmt(r.eval.rr),
                fmt(r.eval.f1_templates[0]),
                fmt(r.eval.f1_templates[1]),
                fmt(r.eval.f1_templates[2]),
                fmt(r.eval.f1_templates[3]),
                fmt(r.eval.f1_templates[4]),
                fmt(r.eval.f1_unseen),
                fmt(r.downstream),
            ));
        }
        out
    }
}

/// Evaluates one (model, hook) against the bank and downstream task.
fn full_eval(
    world: &World,
    model: &TransformerLm,
    hook: &dyn LayerHook,
    known: &[usize],
    unknown: &[usize],
    downstream_n: usize,
) -> (MethodEval, f32) {
    let eval = evaluate_method(model, hook, &world.tokenizer, &world.bank, known, unknown);
    let triples = sample_downstream_triples(&world.store, downstream_n, world.config.seed ^ 0xd0);
    let downstream = match world.config.domain {
        Domain::Umls => {
            let items = build_yesno_items(&world.store, &triples, world.config.seed ^ 0xd1);
            eval_yesno(model, hook, &world.tokenizer, &items)
        }
        Domain::MetaQa => {
            let items = build_one_hop_items(&world.store, &triples);
            eval_one_hop(model, hook, &world.tokenizer, &items)
        }
    };
    (eval, downstream)
}

/// Unknown-only QA samples (seen templates) — the model-editing methods'
/// natural training set (they edit wrong facts).
fn unknown_only_samples(world: &World, unknown: &[usize]) -> Vec<LmSample> {
    let mut out = Vec::with_capacity(unknown.len() * SEEN_TEMPLATES.len());
    for &i in unknown {
        for &tpl in &SEEN_TEMPLATES {
            out.push(qa_sample(world.bank.mcq(tpl, i), &world.tokenizer));
        }
    }
    out
}

/// A prepared experiment: world built, detection done, datasets ready.
/// Figure binaries reuse this to train several methods against one world.
pub struct Prepared {
    /// The built world.
    pub world: World,
    /// Detection: initially known triple indices (N1+N2).
    pub known: Vec<usize>,
    /// Detection: initially unknown triple indices (N3+N4).
    pub unknown: Vec<usize>,
    /// InfuserKI three-phase dataset (QA includes the known mix).
    pub data: KiDataset,
}

/// Builds the world and runs knowledge detection once.
pub fn prepare(world_cfg: &WorldConfig) -> Prepared {
    eprintln!("[exp] building world ({} triplets)…", world_cfg.n_triplets);
    let world = build_world(world_cfg);
    eprintln!("[exp] detecting unknown knowledge…");
    let detection = detect_unknown(
        &world.base,
        &NoHook,
        &world.tokenizer,
        world.bank.template(0),
    );
    let known = detection.known;
    let unknown = detection.unknown;
    eprintln!(
        "[exp] detection: {} known / {} unknown",
        known.len(),
        unknown.len()
    );
    let data = KiDataset::build(
        &world.store,
        &world.bank,
        &world.tokenizer,
        &known,
        &unknown,
        world_cfg.seed ^ 0xda7a,
    );
    Prepared {
        world,
        known,
        unknown,
        data,
    }
}

/// Runs a full experiment: build world, detect, integrate per method,
/// evaluate every row.
pub fn run_experiment(title: &str, cfg: &ExperimentConfig) -> ExperimentReport {
    eprintln!("[exp] {title}");
    let Prepared {
        world,
        known,
        unknown,
        data,
    } = prepare(&cfg.world);
    let me_samples = unknown_only_samples(&world, &unknown);
    let tc = &cfg.train;
    let epochs = tc.epochs_qa;

    let mut rows = Vec::new();
    for kind in &cfg.methods {
        let name = kind.name();
        eprintln!("[exp] running {name}…");
        let started = Instant::now();
        let (eval, downstream, extra) = match kind {
            MethodKind::Vanilla => {
                let (e, d) = full_eval(
                    &world,
                    &world.base,
                    &NoHook,
                    &known,
                    &unknown,
                    cfg.downstream_n,
                );
                (e, d, 0)
            }
            MethodKind::Calinet => {
                let mut m =
                    Calinet::new(CalinetConfig::for_model(world.base.n_layers()), &world.base);
                let losses = train_patched(
                    &world.base,
                    &mut m,
                    &me_samples,
                    epochs,
                    tc.lr,
                    tc.batch,
                    tc.seed,
                );
                eprintln!("[exp]   losses {losses:.3?}");
                let extra = m.trainable_params();
                let (e, d) = full_eval(&world, &world.base, &m, &known, &unknown, cfg.downstream_n);
                (e, d, extra)
            }
            MethodKind::TPatcher => {
                let mut m = TPatcher::new(TPatcherConfig::default(), &world.base);
                let losses = train_patched(
                    &world.base,
                    &mut m,
                    &me_samples,
                    epochs,
                    tc.lr,
                    tc.batch,
                    tc.seed,
                );
                eprintln!("[exp]   losses {losses:.3?}");
                let extra = m.trainable_params();
                let (e, d) = full_eval(&world, &world.base, &m, &known, &unknown, cfg.downstream_n);
                (e, d, extra)
            }
            MethodKind::PrefixTuning => {
                let mut m = PrefixTuning::new(PrefixConfig::default(), &world.base);
                let losses = train_patched(
                    &world.base,
                    &mut m,
                    &data.qa,
                    epochs,
                    tc.lr,
                    tc.batch,
                    tc.seed,
                );
                eprintln!("[exp]   losses {losses:.3?}");
                let extra = m.trainable_params();
                let (e, d) = full_eval(&world, &world.base, &m, &known, &unknown, cfg.downstream_n);
                (e, d, extra)
            }
            MethodKind::Lora => {
                let mut m = LoraMethod::new(LoraConfig::default(), &world.base);
                let losses = train_patched(
                    &world.base,
                    &mut m,
                    &data.qa,
                    epochs,
                    tc.lr,
                    tc.batch,
                    tc.seed,
                );
                eprintln!("[exp]   losses {losses:.3?}");
                let extra = m.trainable_params();
                let (e, d) = full_eval(&world, &world.base, &m, &known, &unknown, cfg.downstream_n);
                (e, d, extra)
            }
            MethodKind::QLora => {
                let mut qbase = world.base.clone();
                quantize_model(&mut qbase, QuantConfig::default());
                let mut m = LoraMethod::new(LoraConfig::default(), &qbase);
                let losses =
                    train_patched(&qbase, &mut m, &data.qa, epochs, tc.lr, tc.batch, tc.seed);
                eprintln!("[exp]   losses {losses:.3?}");
                let extra = m.trainable_params();
                let (e, d) = full_eval(&world, &qbase, &m, &known, &unknown, cfg.downstream_n);
                (e, d, extra)
            }
            MethodKind::InfuserKi(ik_cfg) => {
                let mut m =
                    InfuserKiMethod::new(ik_cfg.clone(), &world.base, world.store.n_relations());
                let rep = train_infuserki(&world.base, &mut m, &data, tc);
                eprintln!(
                    "[exp]   infuser {:.3?} qa {:.3?} rc {:.3?}",
                    rep.infuser_losses, rep.qa_losses, rep.rc_losses
                );
                let extra = m.extra_params();
                let (e, d) = full_eval(&world, &world.base, &m, &known, &unknown, cfg.downstream_n);
                (e, d, extra)
            }
        };
        let train_secs = started.elapsed().as_secs_f32();
        eprintln!(
            "[exp] {name}: NR {:.2} RR {:.2} ({train_secs:.0}s)",
            eval.nr, eval.rr
        );
        rows.push(MethodResult {
            name,
            eval,
            downstream,
            train_secs,
            extra_params: extra,
        });
    }

    ExperimentReport {
        title: title.to_string(),
        n_triplets: world.store.len(),
        detection: (known.len(), unknown.len()),
        rows,
    }
}

/// Position-sweep helper (Fig. 5): InfuserKI rows for each placement.
pub fn placement_rows(n_layers: usize) -> Vec<(String, Placement)> {
    vec![
        ("FFN bottom".into(), Placement::bottom(n_layers)),
        ("FFN middle".into(), Placement::middle(n_layers)),
        ("FFN top".into(), Placement::top(n_layers)),
        ("Attention".into(), Placement::attention(n_layers)),
        ("FFN full".into(), Placement::main(n_layers)),
    ]
}

/// Writes a report's rendered table and JSON to `results/`.
pub fn save_report(report: &ExperimentReport, stem: &str) {
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let _ = std::fs::write(dir.join(format!("{stem}.txt")), report.render());
    if let Ok(json) = serde_json::to_string_pretty(report) {
        let _ = std::fs::write(dir.join(format!("{stem}.json")), json);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_names_match_paper_rows() {
        assert_eq!(MethodKind::Vanilla.name(), "Vanilla");
        assert_eq!(MethodKind::QLora.name(), "QLoRA");
        let mut cfg = InfuserKiConfig::for_model(12);
        assert_eq!(
            MethodKind::InfuserKi(cfg.clone()).name(),
            "InfuserKI (Ours)"
        );
        cfg.ablation.use_rc = false;
        assert_eq!(
            MethodKind::InfuserKi(cfg.clone()).name(),
            "InfuserKI-w/o-RC"
        );
        cfg.ablation.use_rc = true;
        cfg.ablation.use_infuser = false;
        assert_eq!(MethodKind::InfuserKi(cfg).name(), "InfuserKI-w/o-Ro");
    }

    #[test]
    fn placement_rows_cover_five_configs() {
        let rows = placement_rows(12);
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().any(|(n, _)| n == "Attention"));
    }

    #[test]
    fn report_renders_header_and_rows() {
        let report = ExperimentReport {
            title: "t".into(),
            n_triplets: 10,
            detection: (4, 6),
            rows: vec![MethodResult {
                name: "Vanilla".into(),
                eval: MethodEval {
                    nr: f32::NAN,
                    rr: f32::NAN,
                    f1_templates: [0.4; 5],
                    f1_unseen: 0.4,
                },
                downstream: 0.38,
                train_secs: 0.0,
                extra_params: 0,
            }],
        };
        let text = report.render();
        assert!(text.contains("F1_Unseen"));
        assert!(text.contains("Vanilla"));
        assert!(text.contains("4 known / 6 unknown"));
    }
}
