//! Shared fixture for the hot-swap load scenarios: bakes a knowledge bundle
//! against the serving demo model so `serve_load` and `perf_suite` can drive
//! `load_bundle`/`promote`/`rollback` through the live control plane.

use std::path::PathBuf;

use infuserki_core::{InfuserKiConfig, InfuserKiMethod, KnowledgeBundle};
use infuserki_nn::TransformerLm;

/// A trained-looking method on `base`: real adapter/infuser shapes, weights
/// deterministically nudged away from the identity so a swap observably
/// changes served tokens.
pub fn nudged_method(base: &TransformerLm) -> InfuserKiMethod {
    let mut c = InfuserKiConfig::for_model(base.n_layers());
    c.bottleneck = 4;
    c.infuser_hidden = 4;
    c.rc_dim = 8;
    let mut m = InfuserKiMethod::new(c, base, 5);
    m.visit_adapters_mut(&mut |p: &mut infuserki_tensor::Param| {
        for (i, w) in p.data_mut().data_mut().iter_mut().enumerate() {
            *w += 0.5 * ((i % 7) as f32 - 3.0);
        }
    });
    m
}

/// Saves a bundle for `base` under a unique temp path and returns it.
/// Callers should remove the file when done.
pub fn demo_bundle_file(base: &TransformerLm, tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "infuserki_{tag}_{}.bundle.json",
        std::process::id()
    ));
    KnowledgeBundle::new("bench-swap", nudged_method(base), base, None, Vec::new())
        .expect("bundle builds against demo model")
        .save(&path)
        .expect("bundle saves to temp dir");
    path
}
