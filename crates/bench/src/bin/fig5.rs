//! Regenerates **Fig. 5**: the adapter-position sweep (bottom/middle/top FFN
//! thirds, attention layers, full FFN range).

fn main() {
    let args = infuserki_bench::parse_args(std::env::args().skip(1));
    print!("{}", infuserki_bench::figs::fig5(args));
}
