//! Regenerates **Fig. 1**: t-SNE of mid-depth hidden representations for the
//! vanilla, fully fine-tuned, and InfuserKI models (CSV + drift metric).

fn main() {
    let args = infuserki_bench::parse_args(std::env::args().skip(1));
    print!("{}", infuserki_bench::figs::fig1(args));
}
