//! Serving load series: drives the continuous-batching scheduler at a sweep
//! of offered concurrency levels and reports time-to-first-token percentiles
//! and decode throughput — the numbers quoted in the README's Serving
//! section (not a paper artifact).
//!
//! Closed-loop load: each level keeps exactly `load` requests in flight —
//! every completion immediately submits the next request — until the total
//! request count drains. A fresh scheduler (and metrics reservoir) serves
//! each level.
//!
//! After the sweep, a `swap_under_load` scenario re-runs the closed loop
//! with a knowledge-bundle promote a third of the way in and a rollback at
//! two thirds, reporting TTFT percentiles that span the swaps
//! (informational — hot-swap cost, not steady-state throughput).

use std::collections::VecDeque;
use std::time::Instant;

use infuserki_serve::{demo_model, spawn_scheduler, Outcome, ServeConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const VOCAB: usize = 64;

fn main() {
    let mut total = 128usize;
    let mut loads: Vec<usize> = vec![1, 4, 16, 64];
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--total" => {
                i += 1;
                total = argv[i].parse().unwrap();
            }
            "--loads" => {
                i += 1;
                loads = argv[i].split(',').map(|s| s.parse().unwrap()).collect();
            }
            other => panic!("unknown arg {other}"),
        }
        i += 1;
    }

    println!("serve load series: demo model, {total} requests per level, greedy max_new 16");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "load", "p50 TTFT ms", "p99 TTFT ms", "wall tok/s", "occupancy", "wall s"
    );
    for &load in &loads {
        let (p50, p99, toks, occ, wall) = run_level(load, total);
        println!("{load:>6} {p50:>12.2} {p99:>12.2} {toks:>12.1} {occ:>10.2} {wall:>10.2}");
    }

    // Hot-swap scenario (informational): same closed loop at load 8, but a
    // knowledge bundle is loaded+promoted a third of the way through and
    // rolled back at two thirds, so the TTFT tail includes the swap cost.
    let swap = run_swap_level(8, total);
    println!("\nswap_under_load: load 8, {total} requests, promote at 1/3, rollback at 2/3");
    println!(
        "  p50 TTFT {:.2} ms, p99 TTFT {:.2} ms, {:.1} wall tok/s, {} swap(s) + {} rollback(s), wall {:.2} s",
        swap.p50, swap.p99, swap.toks, swap.swaps, swap.rollbacks, swap.wall
    );
}

struct SwapReport {
    p50: f64,
    p99: f64,
    toks: f64,
    swaps: u64,
    rollbacks: u64,
    wall: f64,
}

/// Closed loop at `load` with a mid-run bundle promote and a later rollback;
/// every request completes on whichever version it was admitted under.
fn run_swap_level(load: usize, total: usize) -> SwapReport {
    let model = demo_model();
    let bundle = infuserki_bench::swap::demo_bundle_file(&model, "serve_load_swap");
    let (client, handle) = spawn_scheduler(model, infuserki_nn::NoHook, ServeConfig::default())
        .expect("scheduler spawns");
    let mut rng = ChaCha8Rng::seed_from_u64(9100 + load as u64);
    let submit = |rng: &mut ChaCha8Rng| {
        let plen = rng.gen_range(4usize..24);
        let prompt: Vec<usize> = (0..plen).map(|_| rng.gen_range(0..VOCAB)).collect();
        client.generate(prompt, 16, None).expect("submit accepted")
    };

    let started = Instant::now();
    let mut in_flight = VecDeque::new();
    let mut submitted = 0usize;
    while submitted < total.min(load) {
        in_flight.push_back(submit(&mut rng));
        submitted += 1;
    }
    let mut completed = 0usize;
    let mut completed_tokens = 0u64;
    while let Some(h) = in_flight.pop_front() {
        match h.wait().expect("scheduler alive") {
            Outcome::Generated { tokens } => completed_tokens += tokens.len() as u64,
            other => panic!("unexpected outcome {other:?}"),
        }
        completed += 1;
        if completed == total / 3 {
            let info = client
                .load_bundle(bundle.to_string_lossy().as_ref())
                .expect("bundle loads");
            client.promote(info.version).expect("bundle promotes");
        } else if completed == 2 * total / 3 {
            client.rollback().expect("rollback succeeds");
        }
        if submitted < total {
            in_flight.push_back(submit(&mut rng));
            submitted += 1;
        }
    }
    let wall = started.elapsed().as_secs_f64();
    handle.shutdown();
    let _ = std::fs::remove_file(&bundle);
    let snap = client.metrics();
    assert_eq!(snap.completed as usize, total);
    SwapReport {
        p50: snap.ttft_p50_ms,
        p99: snap.ttft_p99_ms,
        toks: completed_tokens as f64 / wall,
        swaps: snap.bundle_swaps,
        rollbacks: snap.bundle_rollbacks,
        wall,
    }
}

/// Runs one closed-loop level; returns (p50 TTFT ms, p99 TTFT ms,
/// wall-clock decode tokens/sec, mean lane occupancy, wall seconds).
fn run_level(load: usize, total: usize) -> (f64, f64, f64, f64, f64) {
    let (client, handle) =
        spawn_scheduler(demo_model(), infuserki_nn::NoHook, ServeConfig::default())
            .expect("scheduler spawns");
    let mut rng = ChaCha8Rng::seed_from_u64(9000 + load as u64);
    let submit = |rng: &mut ChaCha8Rng| {
        let plen = rng.gen_range(4usize..24);
        let prompt: Vec<usize> = (0..plen).map(|_| rng.gen_range(0..VOCAB)).collect();
        client.generate(prompt, 16, None).expect("submit accepted")
    };

    let started = Instant::now();
    let mut in_flight = VecDeque::new();
    let mut submitted = 0usize;
    while submitted < total.min(load) {
        in_flight.push_back(submit(&mut rng));
        submitted += 1;
    }
    let mut completed_tokens = 0u64;
    while let Some(h) = in_flight.pop_front() {
        match h.wait().expect("scheduler alive") {
            Outcome::Generated { tokens } => completed_tokens += tokens.len() as u64,
            other => panic!("unexpected outcome {other:?}"),
        }
        if submitted < total {
            in_flight.push_back(submit(&mut rng));
            submitted += 1;
        }
    }
    let wall = started.elapsed().as_secs_f64();
    // Join the scheduler thread before reading its counters: the final
    // response is delivered a hair before the step's metrics update.
    handle.shutdown();
    let snap = client.metrics();
    assert_eq!(snap.completed as usize, total);
    (
        snap.ttft_p50_ms,
        snap.ttft_p99_ms,
        completed_tokens as f64 / wall,
        snap.avg_occupancy,
        wall,
    )
}
