//! Serving load series: drives the continuous-batching scheduler at a sweep
//! of offered concurrency levels and reports time-to-first-token percentiles
//! and decode throughput — the numbers quoted in the README's Serving
//! section (not a paper artifact).
//!
//! Closed-loop load: each level keeps exactly `load` requests in flight —
//! every completion immediately submits the next request — until the total
//! request count drains. A fresh scheduler (and metrics reservoir) serves
//! each level.

use std::collections::VecDeque;
use std::time::Instant;

use infuserki_serve::{demo_model, spawn_scheduler, Outcome, ServeConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const VOCAB: usize = 64;

fn main() {
    let mut total = 128usize;
    let mut loads: Vec<usize> = vec![1, 4, 16, 64];
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--total" => {
                i += 1;
                total = argv[i].parse().unwrap();
            }
            "--loads" => {
                i += 1;
                loads = argv[i].split(',').map(|s| s.parse().unwrap()).collect();
            }
            other => panic!("unknown arg {other}"),
        }
        i += 1;
    }

    println!("serve load series: demo model, {total} requests per level, greedy max_new 16");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "load", "p50 TTFT ms", "p99 TTFT ms", "wall tok/s", "occupancy", "wall s"
    );
    for &load in &loads {
        let (p50, p99, toks, occ, wall) = run_level(load, total);
        println!("{load:>6} {p50:>12.2} {p99:>12.2} {toks:>12.1} {occ:>10.2} {wall:>10.2}");
    }
}

/// Runs one closed-loop level; returns (p50 TTFT ms, p99 TTFT ms,
/// wall-clock decode tokens/sec, mean lane occupancy, wall seconds).
fn run_level(load: usize, total: usize) -> (f64, f64, f64, f64, f64) {
    let (client, handle) =
        spawn_scheduler(demo_model(), infuserki_nn::NoHook, ServeConfig::default())
            .expect("scheduler spawns");
    let mut rng = ChaCha8Rng::seed_from_u64(9000 + load as u64);
    let submit = |rng: &mut ChaCha8Rng| {
        let plen = rng.gen_range(4usize..24);
        let prompt: Vec<usize> = (0..plen).map(|_| rng.gen_range(0..VOCAB)).collect();
        client.generate(prompt, 16, None).expect("submit accepted")
    };

    let started = Instant::now();
    let mut in_flight = VecDeque::new();
    let mut submitted = 0usize;
    while submitted < total.min(load) {
        in_flight.push_back(submit(&mut rng));
        submitted += 1;
    }
    let mut completed_tokens = 0u64;
    while let Some(h) = in_flight.pop_front() {
        match h.wait().expect("scheduler alive") {
            Outcome::Generated { tokens } => completed_tokens += tokens.len() as u64,
            other => panic!("unexpected outcome {other:?}"),
        }
        if submitted < total {
            in_flight.push_back(submit(&mut rng));
            submitted += 1;
        }
    }
    let wall = started.elapsed().as_secs_f64();
    // Join the scheduler thread before reading its counters: the final
    // response is delivered a hair before the step's metrics update.
    handle.shutdown();
    let snap = client.metrics();
    assert_eq!(snap.completed as usize, total);
    (
        snap.ttft_p50_ms,
        snap.ttft_p99_ms,
        completed_tokens as f64 / wall,
        snap.avg_occupancy,
        wall,
    )
}
