//! Router load series: drives the multi-replica front router under a
//! closed loop at a sweep of replica counts and reports wall-clock decode
//! throughput, the affinity-dispatch share, and the per-replica dispatch
//! spread — the numbers quoted in the README's Multi-replica section (not
//! a paper artifact, and never gated: replicas share this host's cores, so
//! the scaling curve measures scheduler overhead, not ideal speedup).
//!
//! Closed-loop load: each level keeps exactly `load` requests in flight —
//! every completion immediately submits the next — until the total request
//! count drains. Prompts are cut from a small pool of shared templates plus
//! a unique suffix, so prefix affinity keeps template traffic homed and the
//! per-replica radix caches stay warm.

use std::collections::VecDeque;
use std::time::Instant;

use infuserki_router::{spawn_router, RouterConfig};
use infuserki_serve::{demo_model, GenerateSpec, Outcome, RequestKind, ServeConfig, SubmitOpts};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const VOCAB: usize = 64;

fn main() {
    let mut total = 96usize;
    let mut load = 16usize;
    let mut replica_counts: Vec<usize> = vec![1, 2];
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--total" => {
                i += 1;
                total = argv[i].parse().unwrap();
            }
            "--load" => {
                i += 1;
                load = argv[i].parse().unwrap();
            }
            "--replicas" => {
                i += 1;
                replica_counts = argv[i].split(',').map(|s| s.parse().unwrap()).collect();
            }
            other => panic!("unknown arg {other}"),
        }
        i += 1;
    }

    println!(
        "router load series: demo model, {total} requests per level, \
         {load} in flight, greedy max_new 16"
    );
    println!(
        "{:>9} {:>12} {:>10} {:>10} {:>20} {:>8}",
        "replicas", "wall tok/s", "affinity", "balanced", "per-replica", "wall s"
    );
    let mut single = None;
    for &replicas in &replica_counts {
        let r = run_level(replicas, load, total);
        let spread = r
            .per_replica
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join("/");
        println!(
            "{replicas:>9} {:>12.1} {:>10} {:>10} {spread:>20} {:>8.2}",
            r.toks, r.affinity, r.balanced, r.wall
        );
        if replicas == 1 {
            single = Some(r.toks);
        } else if let Some(base) = single {
            println!(
                "          scaling vs 1 replica: {:.2}x (cores are shared; \
                 sub-linear is expected)",
                r.toks / base
            );
        }
    }
}

struct LevelReport {
    toks: f64,
    affinity: u64,
    balanced: u64,
    per_replica: Vec<u64>,
    wall: f64,
}

/// Runs one closed-loop level through `spawn_router` with `replicas`
/// identical demo-model schedulers.
fn run_level(replicas: usize, load: usize, total: usize) -> LevelReport {
    let cfg = RouterConfig {
        replicas,
        serve: ServeConfig::default(),
        ..RouterConfig::default()
    };
    let (client, handle) =
        spawn_router(cfg, |_| (demo_model(), infuserki_nn::NoHook)).expect("router spawns");
    let mut rng = ChaCha8Rng::seed_from_u64(9200 + replicas as u64);
    let templates: Vec<Vec<usize>> = (0..4)
        .map(|_| (0..24).map(|_| rng.gen_range(0..VOCAB)).collect())
        .collect();
    let submit = |rng: &mut ChaCha8Rng| {
        let mut prompt = templates[rng.gen_range(0..templates.len())].clone();
        for _ in 0..rng.gen_range(1..5) {
            prompt.push(rng.gen_range(0..VOCAB));
        }
        let kind = RequestKind::Generate(GenerateSpec::greedy(prompt, 16, None));
        client
            .submit(kind, SubmitOpts::default(), None)
            .expect("submit accepted")
    };

    let started = Instant::now();
    let mut in_flight = VecDeque::new();
    let mut submitted = 0usize;
    while submitted < total.min(load) {
        in_flight.push_back(submit(&mut rng));
        submitted += 1;
    }
    let mut tokens = 0u64;
    while let Some(h) = in_flight.pop_front() {
        match h.wait().expect("router alive") {
            Outcome::Generated { tokens: t } => tokens += t.len() as u64,
            other => panic!("unexpected outcome {other:?}"),
        }
        if submitted < total {
            in_flight.push_back(submit(&mut rng));
            submitted += 1;
        }
    }
    let wall = started.elapsed().as_secs_f64();
    let m = client.metrics();
    assert_eq!(m.dispatched.get() as usize, total);
    let per_replica: Vec<u64> = (0..replicas)
        .map(|i| m.replica_dispatched[i].get())
        .collect();
    let report = LevelReport {
        toks: tokens as f64 / wall,
        affinity: m.affinity_hits.get(),
        balanced: m.balanced.get(),
        per_replica,
        wall,
    };
    handle.shutdown();
    report
}
