//! Runs every table and figure in sequence and writes the combined report to
//! `results/all_experiments.md`.

use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let args = infuserki_bench::parse_args(std::env::args().skip(1));
    let mut combined = String::from("# InfuserKI reproduction — full experiment run\n\n");
    let started = Instant::now();

    for (name, f) in [
        ("table1", infuserki_bench::tables::table1 as fn(_) -> _),
        ("table2", infuserki_bench::tables::table2),
        ("table3", infuserki_bench::tables::table3),
        ("table4", infuserki_bench::tables::table4),
    ] {
        let t = Instant::now();
        let report = f(args);
        let _ = writeln!(combined, "{}", report.render());
        let _ = writeln!(
            combined,
            "_{name} took {:.0}s_\n",
            t.elapsed().as_secs_f32()
        );
        println!("{}", report.render());
    }
    for (name, f) in [
        ("fig1", infuserki_bench::figs::fig1 as fn(_) -> String),
        ("fig5", infuserki_bench::figs::fig5),
        ("fig6", infuserki_bench::figs::fig6),
        ("fig7", infuserki_bench::figs::fig7),
        ("ext", infuserki_bench::extensions::extensions),
    ] {
        let t = Instant::now();
        let text = f(args);
        let _ = writeln!(combined, "{text}");
        let _ = writeln!(
            combined,
            "_{name} took {:.0}s_\n",
            t.elapsed().as_secs_f32()
        );
        println!("{text}");
    }
    let _ = writeln!(
        combined,
        "\n_total wall time: {:.0}s_",
        started.elapsed().as_secs_f32()
    );
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/all_experiments.md", combined);
    eprintln!("[run_all] wrote results/all_experiments.md");
}
