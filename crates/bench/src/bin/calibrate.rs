//! Calibration utility: pre-trains a base model at a given lr/epoch budget
//! and reports the knowledge-detection known-rate as epochs accumulate —
//! used to size `WorldConfig` defaults for the CPU budget (not a paper
//! artifact).

use infuserki_core::detect::detect_unknown;
use infuserki_eval::world::{build_world, Domain, WorldConfig};
use infuserki_nn::NoHook;

fn main() {
    let mut n = 120;
    let mut lr = 8e-3f32;
    let mut epochs = 24;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--n" => {
                i += 1;
                n = argv[i].parse().unwrap();
            }
            "--lr" => {
                i += 1;
                lr = argv[i].parse().unwrap();
            }
            "--epochs" => {
                i += 1;
                epochs = argv[i].parse().unwrap();
            }
            other => panic!("unknown arg {other}"),
        }
        i += 1;
    }
    let mut cfg = WorldConfig::new(Domain::Umls, n, 42);
    cfg.pretrain_lr = lr;
    cfg.pretrain_epochs = epochs;
    let w = build_world(&cfg);

    // Show a few seen-fact generations for debugging.
    for &i in w.pretrained_idx.iter().take(5) {
        let mcq = w.bank.mcq(0, i);
        let prompt = w
            .tokenizer
            .encode_strict(&infuserki_text::format_mcq_prompt(mcq));
        let generated = infuserki_nn::sampler::greedy_decode(&w.base, &NoHook, &prompt, 6, None);
        println!(
            "seen #{i}: gold '{} {}' | generated '{}'",
            infuserki_text::option_token(mcq.correct),
            mcq.answer(),
            w.tokenizer.decode(&generated)
        );
    }
    let det = detect_unknown(&w.base, &NoHook, &w.tokenizer, w.bank.template(0));
    // Ground-truth comparison: how many *pretrained* facts does the model
    // actually answer correctly (true known-rate), and how many held-out
    // facts does it luck into?
    let seen: std::collections::HashSet<usize> = w.pretrained_idx.iter().copied().collect();
    let known_set: std::collections::HashSet<usize> = det.known.iter().copied().collect();
    let seen_correct = w
        .pretrained_idx
        .iter()
        .filter(|i| known_set.contains(i))
        .count();
    let unseen_total = w.store.len() - seen.len();
    let unseen_correct = det.known.len() - seen_correct;
    println!(
        "lr {lr} epochs {epochs}: detection {} known / {} unknown | seen acc {:.2} ({} / {}) | unseen acc {:.2} ({} / {})",
        det.known.len(),
        det.unknown.len(),
        seen_correct as f32 / seen.len() as f32,
        seen_correct,
        seen.len(),
        unseen_correct as f32 / unseen_total as f32,
        unseen_correct,
        unseen_total,
    );
}
