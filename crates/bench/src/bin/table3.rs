//! Regenerates **Table 3**: the UMLS scale-up (paper: 25,000 triplets, 10×
//! Table 1); model-editing methods should degrade while InfuserKI holds.

fn main() {
    let args = infuserki_bench::parse_args(std::env::args().skip(1));
    let report = infuserki_bench::tables::table3(args);
    print!("{}", report.render());
}
