//! Regenerates **Table 1**: InfuserKI vs. PEFT and ME methods on the
//! UMLS-style KG at the paper's 2.5k-triplet scale (scaled per `--scale`).

fn main() {
    let args = infuserki_bench::parse_args(std::env::args().skip(1));
    let report = infuserki_bench::tables::table1(args);
    print!("{}", report.render());
}
