//! Regenerates **Table 2**: the method comparison on the MetaQA-style movie
//! KG (paper: 2,900 triplets) with the 1-hop QA downstream task.

fn main() {
    let args = infuserki_bench::parse_args(std::env::args().skip(1));
    let report = infuserki_bench::tables::table2(args);
    print!("{}", report.render());
}
