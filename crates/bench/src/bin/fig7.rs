//! Regenerates **Fig. 7**: the case study — option probability tables for
//! vanilla / LoRA / InfuserKI on an injected and a retained fact.

fn main() {
    let args = infuserki_bench::parse_args(std::env::args().skip(1));
    print!("{}", infuserki_bench::figs::fig7(args));
}
