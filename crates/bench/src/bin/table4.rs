//! Regenerates **Table 4**: the ablation study — full InfuserKI vs. w/o-RL,
//! w/o-Ro and w/o-RC on the UMLS-style KG.

fn main() {
    let args = infuserki_bench::parse_args(std::env::args().skip(1));
    let report = infuserki_bench::tables::table4(args);
    print!("{}", report.render());
    println!("\nNR / RR / F1_Unseen summary:");
    for r in &report.rows {
        println!(
            "{:<18} {:.2} {:.2} {:.2}",
            r.name, r.eval.nr, r.eval.rr, r.eval.f1_unseen
        );
    }
}
