//! Regenerates **Fig. 6**: per-layer infusing scores for known vs. unknown
//! samples.

fn main() {
    let args = infuserki_bench::parse_args(std::env::args().skip(1));
    print!("{}", infuserki_bench::figs::fig6(args));
}
