//! Runs the extension suite: GRACE vs. InfuserKI, classic forgetting
//! mitigations (EWC/replay/distillation), and 2-hop compositional QA.

fn main() {
    let args = infuserki_bench::parse_args(std::env::args().skip(1));
    print!("{}", infuserki_bench::extensions::extensions(args));
}
