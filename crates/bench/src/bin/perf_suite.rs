//! `perf_suite` — the pinned-size benchmark suite behind CI's
//! bench-regression gate.
//!
//! Three benches, sizes fixed so runs are comparable across commits:
//!
//! * `matmul_256` — 256³ parallel blocked matmul, GFLOP/s (best of 5);
//! * `matmul_256_scalar` — the same product pinned to the scalar ISA tier
//!   (informational; the SIMD-dispatch speedup is the ratio to `matmul_256`);
//! * `cached_decode` — single-sequence KV-cached greedy decode on the demo
//!   model, tokens/s (best of 3);
//! * `quantized_decode` — the same decode with the frozen base quantized to
//!   blockwise int8 (the fused dequant-matmul path), tokens/s;
//! * `serve_closed_loop` — the continuous-batching scheduler under a
//!   closed loop of 16 in-flight generate requests, decode tokens/s;
//! * `prefix_sweep` — the same closed loop with every prompt cut from three
//!   shared 40-token templates, so most prefills adopt paged-KV blocks from
//!   the radix prefix cache instead of recomputing them, tokens/s;
//! * `swap_under_load` — the closed loop with a knowledge-bundle
//!   promote/rollback mid-run; informational only (p99 TTFT across the
//!   swap), never gated.
//! * `ingest_throughput` — durable WAL append rate (records/s, fsync
//!   batched) plus the full delta→published-bundle latency of one online
//!   update round; informational only (training cost dominates and scales
//!   with the method config, not the hot path), never gated.
//! * `router_load` — the same closed loop driven through the two-replica
//!   front router with template-heavy prompts; informational only (replicas
//!   share this host's cores, so tok/s measures dispatch overhead rather
//!   than real scaling — `router_load --replicas 1,2,4` is the full sweep),
//!   never gated.
//!
//! ```text
//! perf_suite --write results/bench_baseline.json   # (re-)baseline
//! perf_suite --check results/bench_baseline.json   # gate: exit 1 on >25% drop
//! perf_suite --check baseline.json --threshold 0.4
//! ```
//!
//! `--check` fails when any higher-is-better metric falls more than
//! `threshold` (default 0.25) below the committed baseline. Best-of-N
//! timing plus a generous threshold keeps the gate usable on noisy shared
//! CI runners while still catching real order-of-magnitude regressions.
//! Records are emitted through `infuserki_obs::PerfSuite` (the
//! machine-readable `BENCH_*.json` hook).

use std::collections::VecDeque;
use std::process::ExitCode;
use std::time::Instant;

use infuserki_nn::{sampler, NoHook};
use infuserki_obs::{PerfRecord, PerfSuite};
use infuserki_serve::{demo_model, spawn_scheduler, Outcome, ServeConfig};
use infuserki_tensor::{init, kernels, Isa, Matrix, QuantSpec};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Value;

fn usage() -> &'static str {
    "usage: perf_suite (--write PATH | --check BASELINE [--threshold FRAC])"
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut write: Option<String> = None;
    let mut check: Option<String> = None;
    let mut threshold = 0.25f64;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--write" => write = it.next().cloned(),
            "--check" => check = it.next().cloned(),
            "--threshold" => {
                threshold = match it.next().and_then(|v| v.parse().ok()) {
                    Some(t) => t,
                    None => {
                        eprintln!("--threshold needs a fraction like 0.25");
                        return ExitCode::from(2);
                    }
                }
            }
            _ => {
                eprintln!("{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    if write.is_some() == check.is_some() {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    }

    let suite = run_suite();
    println!("{}", suite.to_json());

    if let Some(path) = write {
        if let Err(e) = suite.write(&path) {
            eprintln!("perf_suite: failed to write {path}: {e}");
            return ExitCode::from(1);
        }
        eprintln!("perf_suite: baseline written to {path}");
        return ExitCode::SUCCESS;
    }

    let path = check.expect("one mode is set");
    let baseline = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("perf_suite: cannot read baseline {path}: {e}");
            return ExitCode::from(1);
        }
    };
    match gate(&suite, &baseline, threshold) {
        Ok(lines) => {
            for l in lines {
                eprintln!("{l}");
            }
            eprintln!("perf_suite: no regression beyond {:.0}%", threshold * 100.0);
            ExitCode::SUCCESS
        }
        Err(failures) => {
            for f in failures {
                eprintln!("REGRESSION: {f}");
            }
            ExitCode::from(1)
        }
    }
}

fn run_suite() -> PerfSuite {
    let mut suite = PerfSuite::new("perf_suite");
    suite.push(bench_matmul());
    suite.push(bench_matmul_scalar());
    suite.push(bench_cached_decode());
    suite.push(bench_quantized_decode());
    suite.push(bench_serve_closed_loop());
    suite.push(bench_prefix_sweep());
    suite.push(bench_swap_under_load());
    suite.push(bench_ingest_throughput());
    suite.push(bench_router_load());
    suite
}

/// 256³ product on the default thread count — the parallel kernel path.
fn bench_matmul() -> PerfRecord {
    const N: usize = 256;
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let a = init::normal(N, N, 0.5, &mut rng);
    let b = init::normal(N, N, 0.5, &mut rng);
    let mut out = Matrix::zeros(N, N);
    kernels::matmul_into(&a, &b, &mut out, false); // warm-up
    let flops = (2 * N * N * N) as f64;
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        kernels::matmul_into(&a, &b, &mut out, false);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    std::hint::black_box(out.get(0, 0));
    PerfRecord::new("matmul_256")
        .metric("gflops", flops / best / 1e9)
        .metric("wall_ms", best * 1e3)
}

/// The same 256³ product pinned to the scalar ISA tier — the floor the
/// SIMD tiers are measured against. Informational (not gated): its ratio
/// to `matmul_256` is the dispatch speedup on this host.
fn bench_matmul_scalar() -> PerfRecord {
    const N: usize = 256;
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let a = init::normal(N, N, 0.5, &mut rng);
    let b = init::normal(N, N, 0.5, &mut rng);
    let mut out = Matrix::zeros(N, N);
    infuserki_tensor::simd::set_isa(Some(Isa::Scalar));
    kernels::matmul_into(&a, &b, &mut out, false); // warm-up
    let flops = (2 * N * N * N) as f64;
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        kernels::matmul_into(&a, &b, &mut out, false);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    infuserki_tensor::simd::set_isa(None);
    std::hint::black_box(out.get(0, 0));
    PerfRecord::new("matmul_256_scalar")
        .metric("gflops", flops / best / 1e9)
        .metric("wall_ms", best * 1e3)
}

/// Single-sequence KV-cached greedy decode on the demo model.
fn bench_cached_decode() -> PerfRecord {
    let model = demo_model();
    let prompt: Vec<usize> = (1..9).collect();
    let max_new = 48;
    sampler::greedy_decode(&model, &NoHook, &prompt, max_new, None); // warm-up
    let mut best = f64::INFINITY;
    let mut emitted = 0usize;
    for _ in 0..3 {
        let t0 = Instant::now();
        let out = sampler::greedy_decode(&model, &NoHook, &prompt, max_new, None);
        best = best.min(t0.elapsed().as_secs_f64());
        emitted = out.len();
    }
    PerfRecord::new("cached_decode")
        .metric("tok_per_s", emitted as f64 / best)
        .metric("wall_ms", best * 1e3)
}

/// The same cached greedy decode with the demo model's frozen base
/// quantized to blockwise int8 — the fused dequant-matmul path end to end.
fn bench_quantized_decode() -> PerfRecord {
    let mut model = demo_model();
    model.quantize_frozen_base(QuantSpec::default());
    let prompt: Vec<usize> = (1..9).collect();
    let max_new = 48;
    sampler::greedy_decode(&model, &NoHook, &prompt, max_new, None); // warm-up
    let mut best = f64::INFINITY;
    let mut emitted = 0usize;
    for _ in 0..3 {
        let t0 = Instant::now();
        let out = sampler::greedy_decode(&model, &NoHook, &prompt, max_new, None);
        best = best.min(t0.elapsed().as_secs_f64());
        emitted = out.len();
    }
    PerfRecord::new("quantized_decode")
        .metric("tok_per_s", emitted as f64 / best)
        .metric("wall_ms", best * 1e3)
}

/// Closed-loop serving: 16 in-flight greedy requests over 64 total.
fn bench_serve_closed_loop() -> PerfRecord {
    const VOCAB: usize = 64;
    let (load, total) = (16usize, 64usize);
    let (client, handle) =
        spawn_scheduler(demo_model(), NoHook, ServeConfig::default()).expect("scheduler spawns");
    let mut rng = ChaCha8Rng::seed_from_u64(9016);
    let submit = |rng: &mut ChaCha8Rng| {
        let plen = rng.gen_range(4usize..24);
        let prompt: Vec<usize> = (0..plen).map(|_| rng.gen_range(0..VOCAB)).collect();
        client.generate(prompt, 16, None).expect("submit accepted")
    };
    let started = Instant::now();
    let mut in_flight = VecDeque::new();
    let mut submitted = 0usize;
    while submitted < load {
        in_flight.push_back(submit(&mut rng));
        submitted += 1;
    }
    let mut tokens = 0u64;
    while let Some(h) = in_flight.pop_front() {
        match h.wait().expect("scheduler alive") {
            Outcome::Generated { tokens: t } => tokens += t.len() as u64,
            other => panic!("unexpected outcome {other:?}"),
        }
        if submitted < total {
            in_flight.push_back(submit(&mut rng));
            submitted += 1;
        }
    }
    let wall = started.elapsed().as_secs_f64();
    handle.shutdown();
    let snap = client.metrics();
    PerfRecord::new("serve_closed_loop")
        .metric("tok_per_s", tokens as f64 / wall)
        .metric("ttft_p50_ms", snap.ttft_p50_ms)
        .metric("wall_ms", wall * 1e3)
}

/// Closed-loop serving over shared prompt templates: 8 in flight, 48 total,
/// every prompt a 40-token template plus a short unique suffix. Throughput
/// here rides on the prefix cache — losing block adoption (or re-prefilling
/// full templates) tanks tok/s well past the gate threshold.
fn bench_prefix_sweep() -> PerfRecord {
    const VOCAB: usize = 64;
    let (load, total) = (8usize, 48usize);
    let (client, handle) =
        spawn_scheduler(demo_model(), NoHook, ServeConfig::default()).expect("scheduler spawns");
    let mut rng = ChaCha8Rng::seed_from_u64(9017);
    let templates: Vec<Vec<usize>> = (0..3)
        .map(|_| (0..40).map(|_| rng.gen_range(0..VOCAB)).collect())
        .collect();
    let submit = |rng: &mut ChaCha8Rng| {
        let mut prompt = templates[rng.gen_range(0..templates.len())].clone();
        for _ in 0..rng.gen_range(1..5) {
            prompt.push(rng.gen_range(0..VOCAB));
        }
        client.generate(prompt, 8, None).expect("submit accepted")
    };
    let started = Instant::now();
    let mut in_flight = VecDeque::new();
    let mut submitted = 0usize;
    while submitted < load {
        in_flight.push_back(submit(&mut rng));
        submitted += 1;
    }
    let mut tokens = 0u64;
    while let Some(h) = in_flight.pop_front() {
        match h.wait().expect("scheduler alive") {
            Outcome::Generated { tokens: t } => tokens += t.len() as u64,
            other => panic!("unexpected outcome {other:?}"),
        }
        if submitted < total {
            in_flight.push_back(submit(&mut rng));
            submitted += 1;
        }
    }
    let wall = started.elapsed().as_secs_f64();
    handle.shutdown();
    let snap = client.metrics();
    let eligible = (snap.prefix_hits + snap.prefix_misses).max(1);
    PerfRecord::new("prefix_sweep")
        .metric("tok_per_s", tokens as f64 / wall)
        .metric("hit_rate", snap.prefix_hits as f64 / eligible as f64)
        .metric("ttft_p50_ms", snap.ttft_p50_ms)
        .metric("wall_ms", wall * 1e3)
}

/// Closed-loop serving with a live knowledge swap: 8 in flight, 48 total; a
/// bundle is loaded+promoted after a third of the completions and rolled
/// back after two thirds. Informational only — the p99 TTFT spanning the
/// swap is the number to watch; it must NOT join the gated list, since swap
/// cost rides on bundle deserialization, not the steady-state hot path.
fn bench_swap_under_load() -> PerfRecord {
    const VOCAB: usize = 64;
    let (load, total) = (8usize, 48usize);
    let model = demo_model();
    let bundle = infuserki_bench::swap::demo_bundle_file(&model, "perf_suite_swap");
    let (client, handle) =
        spawn_scheduler(model, NoHook, ServeConfig::default()).expect("scheduler spawns");
    let mut rng = ChaCha8Rng::seed_from_u64(9018);
    let submit = |rng: &mut ChaCha8Rng| {
        let plen = rng.gen_range(4usize..24);
        let prompt: Vec<usize> = (0..plen).map(|_| rng.gen_range(0..VOCAB)).collect();
        client.generate(prompt, 16, None).expect("submit accepted")
    };
    let started = Instant::now();
    let mut in_flight = VecDeque::new();
    let mut submitted = 0usize;
    while submitted < load {
        in_flight.push_back(submit(&mut rng));
        submitted += 1;
    }
    let mut completed = 0usize;
    let mut tokens = 0u64;
    while let Some(h) = in_flight.pop_front() {
        match h.wait().expect("scheduler alive") {
            Outcome::Generated { tokens: t } => tokens += t.len() as u64,
            other => panic!("unexpected outcome {other:?}"),
        }
        completed += 1;
        if completed == total / 3 {
            let info = client
                .load_bundle(bundle.to_string_lossy().as_ref())
                .expect("bundle loads");
            client.promote(info.version).expect("bundle promotes");
        } else if completed == 2 * total / 3 {
            client.rollback().expect("rollback succeeds");
        }
        if submitted < total {
            in_flight.push_back(submit(&mut rng));
            submitted += 1;
        }
    }
    let wall = started.elapsed().as_secs_f64();
    handle.shutdown();
    let _ = std::fs::remove_file(&bundle);
    let snap = client.metrics();
    PerfRecord::new("swap_under_load")
        .metric("tok_per_s", tokens as f64 / wall)
        .metric("ttft_p99_ms", snap.ttft_p99_ms)
        .metric("swaps", snap.bundle_swaps as f64)
        .metric("wall_ms", wall * 1e3)
}

/// Streaming KG ingestion: append rate into the durable WAL (fsync batched
/// every 64 records) over 2000 deltas, recovery wall time over that log,
/// and the latency of one full online update round — two novel facts
/// tailed from the WAL, detected, trained and published live through the
/// scheduler's NR promote gate. Informational only: round latency is
/// dominated by adapter training, which scales with the method config
/// rather than any serving hot path, so it must NOT join the gated list.
fn bench_ingest_throughput() -> PerfRecord {
    use infuserki_core::{InfuserKiConfig, TrainConfig};
    use infuserki_ingest::{
        recover, AppendOutcome, DurableStore, PipelineConfig, RoundOutcome, StoreOptions,
        TripleDelta, UpdatePipeline,
    };
    use infuserki_kg::{synth_umls, UmlsConfig};
    use infuserki_nn::{ModelConfig, TransformerLm};
    use infuserki_text::{prompts, templates::TemplateSet, Tokenizer};

    let dir = std::env::temp_dir().join(format!("infuserki_perf_ingest_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Append rate: a realistic mixed stream of adds over a modest name
    // pool, fsync batched.
    const RECORDS: usize = 2000;
    let opts = StoreOptions {
        sync_every: 64,
        snapshot_every: 0,
        functional: false,
    };
    let mut ds = DurableStore::open(&dir, opts).expect("wal dir opens");
    let t0 = Instant::now();
    let mut accepted = 0usize;
    for i in 0..RECORDS {
        let d = TripleDelta::add(
            format!("entity {}", i % 211),
            format!("relation {}", i % 7),
            format!("entity {}", (i * 31 + 5) % 211),
        );
        if let AppendOutcome::Accepted(_) = ds.append(&d).expect("append") {
            accepted += 1;
        }
    }
    ds.sync().expect("final sync");
    let append_wall = t0.elapsed().as_secs_f64();
    drop(ds);

    let t0 = Instant::now();
    let rec = recover(&dir).expect("recovery");
    let recover_wall = t0.elapsed().as_secs_f64();
    std::hint::black_box(rec.state.seq);
    let _ = std::fs::remove_dir_all(&dir);

    // Delta→bundle latency: one pipeline round end to end on a tiny world,
    // publishing through the real scheduler control plane.
    let world = synth_umls(&UmlsConfig::with_triplets(40, 19));
    let mut lines: Vec<String> = world.entity_names().map(str::to_string).collect();
    for r in world.relation_names() {
        lines.extend(TemplateSet::vocabulary_lines(r));
    }
    lines.extend(prompts::vocabulary_lines());
    let tok = Tokenizer::build(lines.iter().map(String::as_str));
    let mut rng = ChaCha8Rng::seed_from_u64(91);
    let base = TransformerLm::new(
        ModelConfig {
            vocab_size: tok.vocab_size(),
            max_seq: 96,
            ..ModelConfig::tiny(0)
        },
        &mut rng,
    );
    let wal = dir.join("round");
    std::fs::create_dir_all(&wal).unwrap();
    let mut ds = DurableStore::open(&wal, StoreOptions::default()).expect("wal dir opens");
    for t in world.triples() {
        let _ = ds
            .append(&TripleDelta::add(
                world.entity_name(t.head),
                world.relation_name(t.relation),
                world.entity_name(t.tail),
            ))
            .expect("baseline append");
    }
    ds.sync().expect("baseline sync");
    let mut method = InfuserKiConfig::for_model(base.n_layers());
    method.bottleneck = 4;
    method.infuser_hidden = 4;
    method.rc_dim = 8;
    let cfg = PipelineConfig {
        min_batch: 2,
        max_relations: 24,
        method: Some(method),
        bundle_dir: wal.join("bundles").display().to_string(),
        name_prefix: "perf".to_string(),
        train: TrainConfig {
            epochs_infuser: 6,
            epochs_qa: 24,
            epochs_rc: 2,
            lr: 3e-3,
            lr_infuser: 2e-2,
            batch: 4,
            seed: 11,
        },
        ..PipelineConfig::default()
    };
    let (client, handle) =
        spawn_scheduler(base.clone(), NoHook, ServeConfig::default()).expect("scheduler spawns");
    let metrics = client.metrics_handle();
    let mut pipe = UpdatePipeline::new(base, tok, &wal, cfg, client.clone(), metrics.registry())
        .expect("pipeline opens");
    let names: Vec<&str> = world.entity_names().collect();
    let rel = world.relation_name(world.triples()[0].relation);
    let mut appended = 0;
    'outer: for (i, &s) in names.iter().enumerate() {
        for &o in names.iter().skip(i + 1) {
            if appended == 2 {
                break 'outer;
            }
            if let AppendOutcome::Accepted(_) = ds
                .append(&TripleDelta::add(s, rel, o))
                .expect("novel append")
            {
                appended += 1;
            }
        }
    }
    ds.sync().expect("novel sync");
    let t0 = Instant::now();
    let outcome = pipe.run_once().expect("round runs");
    let round_wall = t0.elapsed().as_secs_f64();
    assert!(
        matches!(outcome, RoundOutcome::Published { .. }),
        "round publishes, got {outcome:?}"
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    PerfRecord::new("ingest_throughput")
        .metric("append_per_s", accepted as f64 / append_wall)
        .metric("recover_ms", recover_wall * 1e3)
        .metric("round_ms", round_wall * 1e3)
}

/// Closed loop through the two-replica front router: 8 in flight, 48
/// total, prompts cut from three shared templates so prefix affinity keeps
/// template traffic homed. Informational only — both replicas share this
/// host's cores, so tok/s here tracks dispatch/fan-out overhead rather
/// than real scaling; it must NOT join the gated list.
fn bench_router_load() -> PerfRecord {
    const VOCAB: usize = 64;
    let (load, total) = (8usize, 48usize);
    let cfg = infuserki_router::RouterConfig {
        replicas: 2,
        serve: ServeConfig::default(),
        ..infuserki_router::RouterConfig::default()
    };
    let (client, handle) =
        infuserki_router::spawn_router(cfg, |_| (demo_model(), NoHook)).expect("router spawns");
    let mut rng = ChaCha8Rng::seed_from_u64(9019);
    let templates: Vec<Vec<usize>> = (0..3)
        .map(|_| (0..24).map(|_| rng.gen_range(0..VOCAB)).collect())
        .collect();
    let submit = |rng: &mut ChaCha8Rng| {
        let mut prompt = templates[rng.gen_range(0..templates.len())].clone();
        for _ in 0..rng.gen_range(1..5) {
            prompt.push(rng.gen_range(0..VOCAB));
        }
        let kind = infuserki_serve::RequestKind::Generate(infuserki_serve::GenerateSpec::greedy(
            prompt, 16, None,
        ));
        client
            .submit(kind, infuserki_serve::SubmitOpts::default(), None)
            .expect("submit accepted")
    };
    let started = Instant::now();
    let mut in_flight = VecDeque::new();
    let mut submitted = 0usize;
    while submitted < load {
        in_flight.push_back(submit(&mut rng));
        submitted += 1;
    }
    let mut tokens = 0u64;
    while let Some(h) = in_flight.pop_front() {
        match h.wait().expect("router alive") {
            Outcome::Generated { tokens: t } => tokens += t.len() as u64,
            other => panic!("unexpected outcome {other:?}"),
        }
        if submitted < total {
            in_flight.push_back(submit(&mut rng));
            submitted += 1;
        }
    }
    let wall = started.elapsed().as_secs_f64();
    let m = client.metrics();
    let dispatched = m.dispatched.get().max(1);
    let record = PerfRecord::new("router_load")
        .metric("tok_per_s", tokens as f64 / wall)
        .metric(
            "affinity_share",
            m.affinity_hits.get() as f64 / dispatched as f64,
        )
        .metric("wall_ms", wall * 1e3);
    handle.shutdown();
    record
}

/// Metrics the gate compares (higher is better). Latency-flavored metrics
/// in the records are informational only — `swap_under_load`,
/// `ingest_throughput`, and `router_load` in particular stay off this list
/// by design (see their doc comments).
const GATED: &[(&str, &str)] = &[
    ("matmul_256", "gflops"),
    ("cached_decode", "tok_per_s"),
    ("quantized_decode", "tok_per_s"),
    ("serve_closed_loop", "tok_per_s"),
    ("prefix_sweep", "tok_per_s"),
];

/// Compares `fresh` against the baseline JSON. `Ok` carries status lines;
/// `Err` carries one line per regressed metric.
fn gate(
    fresh: &PerfSuite,
    baseline_json: &str,
    threshold: f64,
) -> Result<Vec<String>, Vec<String>> {
    let v: Value = match serde_json::from_str(baseline_json) {
        Ok(v) => v,
        Err(e) => return Err(vec![format!("baseline does not parse: {e:?}")]),
    };
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for &(bench, metric) in GATED {
        let base = v
            .get_field("benches")
            .and_then(|b| b.get_field(bench))
            .and_then(|m| m.get_field(metric))
            .and_then(Value::as_f64);
        let Some(base) = base else {
            bad.push(format!("baseline is missing {bench}.{metric}"));
            continue;
        };
        let Some(now) = fresh.get(bench).and_then(|r| r.get(metric)) else {
            bad.push(format!("fresh run is missing {bench}.{metric}"));
            continue;
        };
        let floor = base * (1.0 - threshold);
        let line = format!("{bench}.{metric}: baseline {base:.1}, now {now:.1} (floor {floor:.1})");
        if now < floor {
            bad.push(line);
        } else {
            ok.push(line);
        }
    }
    if bad.is_empty() {
        Ok(ok)
    } else {
        Err(bad)
    }
}
