//! `capture_trace` — records a Chrome trace of the scheduler serving a
//! small mixed workload and writes it where `--out` points (default
//! `results/trace_scheduler_step.json`). Open the file at
//! `chrome://tracing` or <https://ui.perfetto.dev> to see `serve.step` /
//! `serve.advance_lanes` slices nesting over the engine's
//! `engine.prefill_chunk` / `engine.decode_step` spans and the kernel
//! threadpool's `kernels.banded_dispatch` dispatches.

use std::sync::mpsc;

use infuserki_nn::NoHook;
use infuserki_obs as obs;
use infuserki_serve::{
    demo_model, GenerateSpec, McqSpec, Request, RequestKind, Scheduler, ServeConfig,
};
use infuserki_tensor::kernels;

fn main() {
    let out = std::env::args()
        .skip(1)
        .skip_while(|a| a != "--out")
        .nth(1)
        .unwrap_or_else(|| "results/trace_scheduler_step.json".to_string());

    kernels::set_num_threads(1);
    obs::set_enabled(true);
    obs::clear_trace();

    let model = demo_model();
    let mut sched = Scheduler::new(&model, &NoHook, ServeConfig::default()).expect("scheduler");
    let mut sinks = Vec::new();
    let mut submit = |id: u64, kind: RequestKind| {
        let (tx, rx) = mpsc::channel();
        sched.enqueue(Request::new(id, kind, tx));
        sinks.push(rx);
    };
    submit(
        0,
        RequestKind::Generate(GenerateSpec::greedy(vec![1, 2, 3], 8, None)),
    );
    submit(
        1,
        RequestKind::Generate(GenerateSpec::greedy(vec![4, 5], 6, None)),
    );
    submit(
        2,
        RequestKind::Mcq(McqSpec {
            prompt: vec![6, 7],
            options: vec![vec![8], vec![9, 10]],
        }),
    );
    sched.run_until_idle();
    for rx in &sinks {
        rx.try_recv().expect("every request resolved");
    }

    obs::write_chrome_trace(&out).expect("trace written");
    eprintln!("capture_trace: wrote {out}");
}
