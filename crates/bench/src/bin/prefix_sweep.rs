//! Prefix-cache sweep: serving throughput and time-to-first-token as a
//! function of how much of the offered load shares prompt templates — the
//! regime the paged-KV radix cache is built for (not a paper artifact).
//!
//! Each level draws a fraction of its prompts from a small pool of long
//! shared templates (plus a short random suffix, so requests are distinct
//! but block-aligned prefixes collide); the rest are fully random prompts
//! that never hit. Closed-loop load as in `serve_load`: a fresh scheduler
//! per level, completions immediately resubmit until the total drains.
//!
//! ```text
//! prefix_sweep                       # default: 0,25,50,75,100% shared
//! prefix_sweep --total 96 --load 8 --shares 0,50,100
//! prefix_sweep --no-cache           # same sweep, prefix_cache off (control)
//! ```

use std::collections::VecDeque;
use std::time::Instant;

use infuserki_serve::{demo_model, spawn_scheduler, Outcome, ServeConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const VOCAB: usize = 64;
const TEMPLATE_LEN: usize = 40;
const N_TEMPLATES: usize = 3;
const MAX_NEW: usize = 16;

fn main() {
    let mut total = 96usize;
    let mut load = 8usize;
    let mut shares: Vec<u32> = vec![0, 25, 50, 75, 100];
    let mut cache = true;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--total" => {
                i += 1;
                total = argv[i].parse().unwrap();
            }
            "--load" => {
                i += 1;
                load = argv[i].parse().unwrap();
            }
            "--shares" => {
                i += 1;
                shares = argv[i].split(',').map(|s| s.parse().unwrap()).collect();
            }
            "--no-cache" => cache = false,
            other => panic!("unknown arg {other}"),
        }
        i += 1;
    }

    println!(
        "prefix sweep: demo model, {total} requests per level, load {load}, \
         {N_TEMPLATES} templates x {TEMPLATE_LEN} tokens, greedy max_new {MAX_NEW}, \
         prefix_cache {}",
        if cache { "on" } else { "off" }
    );
    println!(
        "{:>7} {:>9} {:>9} {:>8} {:>12} {:>12} {:>12}",
        "share%", "hit rate", "hit toks", "evicted", "p50 TTFT ms", "p99 TTFT ms", "wall tok/s"
    );
    for &share in &shares {
        let (hit_rate, hit_tokens, evicted, p50, p99, toks) = run_level(share, total, load, cache);
        println!(
            "{share:>7} {hit_rate:>9.2} {hit_tokens:>9} {evicted:>8} {p50:>12.2} {p99:>12.2} {toks:>12.1}"
        );
    }
}

/// Runs one closed-loop level with `share`% of prompts template-derived;
/// returns (hit rate, hit tokens, blocks evicted, p50 TTFT ms, p99 TTFT ms,
/// wall tokens/sec).
fn run_level(share: u32, total: usize, load: usize, cache: bool) -> (f64, u64, u64, f64, f64, f64) {
    let cfg = ServeConfig {
        prefix_cache: cache,
        ..ServeConfig::default()
    };
    let (client, handle) =
        spawn_scheduler(demo_model(), infuserki_nn::NoHook, cfg).expect("scheduler spawns");
    let mut rng = ChaCha8Rng::seed_from_u64(9100 + share as u64);
    let templates: Vec<Vec<usize>> = (0..N_TEMPLATES)
        .map(|_| (0..TEMPLATE_LEN).map(|_| rng.gen_range(0..VOCAB)).collect())
        .collect();
    let submit = |rng: &mut ChaCha8Rng| {
        let mut prompt: Vec<usize> = if rng.gen_range(0u32..100) < share {
            templates[rng.gen_range(0..N_TEMPLATES)].clone()
        } else {
            let plen = rng.gen_range(20..TEMPLATE_LEN + 4);
            (0..plen).map(|_| rng.gen_range(0..VOCAB)).collect()
        };
        for _ in 0..rng.gen_range(1..6) {
            prompt.push(rng.gen_range(0..VOCAB));
        }
        client
            .generate(prompt, MAX_NEW, None)
            .expect("submit accepted")
    };

    let started = Instant::now();
    let mut in_flight = VecDeque::new();
    let mut submitted = 0usize;
    while submitted < total.min(load) {
        in_flight.push_back(submit(&mut rng));
        submitted += 1;
    }
    let mut completed_tokens = 0u64;
    while let Some(h) = in_flight.pop_front() {
        match h.wait().expect("scheduler alive") {
            Outcome::Generated { tokens } => completed_tokens += tokens.len() as u64,
            other => panic!("unexpected outcome {other:?}"),
        }
        if submitted < total {
            in_flight.push_back(submit(&mut rng));
            submitted += 1;
        }
    }
    let wall = started.elapsed().as_secs_f64();
    handle.shutdown();
    let snap = client.metrics();
    let eligible = snap.prefix_hits + snap.prefix_misses;
    let hit_rate = if eligible > 0 {
        snap.prefix_hits as f64 / eligible as f64
    } else {
        0.0
    };
    (
        hit_rate,
        snap.prefix_hit_tokens,
        snap.blocks_evicted,
        snap.ttft_p50_ms,
        snap.ttft_p99_ms,
        completed_tokens as f64 / wall,
    )
}
