//! Minimal argument parsing shared by the table/figure binaries.

/// Experiment scale preset.
///
/// `Full` matches the paper's sample sizes; `Default` preserves the paper's
/// ratios at single-core-CPU-feasible sizes; `Quick` is a smoke-test size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test scale (~2 min per table).
    Quick,
    /// CPU-budget scale (used for the recorded EXPERIMENTS.md runs).
    Default,
    /// The paper's sizes (hours on a single CPU core).
    Full,
}

impl Scale {
    /// Picks the triplet count for this scale.
    pub fn pick(&self, quick: usize, default: usize, full: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Default => default,
            Scale::Full => full,
        }
    }
}

/// Parsed common CLI arguments.
#[derive(Debug, Clone, Copy)]
pub struct Args {
    /// Scale preset (`--scale quick|default|full`).
    pub scale: Scale,
    /// Master seed (`--seed N`).
    pub seed: u64,
}

/// Parses `--scale` and `--seed` from an iterator of CLI arguments.
/// Unknown flags abort with a usage message.
pub fn parse_args(argv: impl Iterator<Item = String>) -> Args {
    let mut args = Args {
        scale: Scale::Default,
        seed: 42,
    };
    let argv: Vec<String> = argv.collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                args.scale = match argv.get(i).map(String::as_str) {
                    Some("quick") => Scale::Quick,
                    Some("default") => Scale::Default,
                    Some("full") => Scale::Full,
                    other => {
                        eprintln!("unknown scale {other:?}; use quick|default|full");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                i += 1;
                args.seed = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed requires an integer");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "unknown argument '{other}'; usage: [--scale quick|default|full] [--seed N]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let a = parse_args(std::iter::empty());
        assert_eq!(a.scale, Scale::Default);
        assert_eq!(a.seed, 42);
    }

    #[test]
    fn parses_scale_and_seed() {
        let a = parse_args(
            ["--scale", "quick", "--seed", "7"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(a.scale, Scale::Quick);
        assert_eq!(a.seed, 7);
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2, 3), 1);
        assert_eq!(Scale::Default.pick(1, 2, 3), 2);
        assert_eq!(Scale::Full.pick(1, 2, 3), 3);
    }
}
