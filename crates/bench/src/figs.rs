//! Library entry points for the four figures (shared by the per-figure
//! binaries and `run_all`).

use std::fmt::Write as _;

use infuserki_baselines::lora::{LoraConfig, LoraMethod};
use infuserki_baselines::{train_patched, FullFineTune};
use infuserki_core::{train_infuserki, InfuserKiConfig, InfuserKiMethod};
use infuserki_eval::mcq_eval::answer_template;
use infuserki_eval::probes::{fig1_layer, gate_profile, hidden_states_for, option_probs_many};
use infuserki_eval::projection::tsne;
use infuserki_eval::world::{Domain, WorldConfig};
use infuserki_eval::{evaluate_method, metrics::McqOutcome};
use infuserki_nn::NoHook;

use crate::cli::Args;
use crate::runner::{placement_rows, prepare, Prepared};

fn save_text(stem: &str, text: &str) {
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write(format!("results/{stem}.txt"), text);
}

fn train_default_infuserki(p: &Prepared) -> InfuserKiMethod {
    let cfg = InfuserKiConfig::for_model(p.world.base.n_layers());
    let mut method = InfuserKiMethod::new(cfg, &p.world.base, p.world.store.n_relations());
    train_infuserki(
        &p.world.base,
        &mut method,
        &p.data,
        &infuserki_core::TrainConfig::default(),
    );
    method
}

fn train_lora(p: &Prepared) -> LoraMethod {
    let tc = infuserki_core::TrainConfig::default();
    let mut lora = LoraMethod::new(LoraConfig::default(), &p.world.base);
    train_patched(
        &p.world.base,
        &mut lora,
        &p.data.qa,
        tc.epochs_qa,
        tc.lr,
        tc.batch,
        tc.seed,
    );
    lora
}

/// Fig. 1 — t-SNE of mid-depth representations for vanilla, fully
/// fine-tuned, and InfuserKI models; plus the representation-drift metric
/// that quantifies the figure's visual claim.
pub fn fig1(args: Args) -> String {
    let n = args.scale.pick(120, 300, 600);
    let p = prepare(&WorldConfig::new(Domain::Umls, n, args.seed));
    let layer = fig1_layer(p.world.base.n_layers());

    eprintln!("[fig1] training InfuserKI…");
    let method = train_default_infuserki(&p);
    eprintln!("[fig1] training full fine-tune…");
    let mut ft = FullFineTune::new(p.world.base.clone());
    let tc = infuserki_core::TrainConfig::default();
    ft.train(&p.data.qa, tc.epochs_qa, tc.lr, tc.batch, tc.seed);

    // Balanced probe set.
    let take = 60.min(p.known.len()).min(p.unknown.len());
    let mut indices: Vec<usize> = p.known.iter().take(take).copied().collect();
    indices.extend(p.unknown.iter().take(take));
    let labels: Vec<bool> = (0..indices.len()).map(|i| i < take).collect();

    let w = &p.world;
    let vanilla = hidden_states_for(&w.base, &NoHook, &w.tokenizer, &w.bank, &indices, layer);
    let tuned = hidden_states_for(ft.model(), &NoHook, &w.tokenizer, &w.bank, &indices, layer);
    let infused = hidden_states_for(
        &w.base,
        &method.hook(),
        &w.tokenizer,
        &w.bank,
        &indices,
        layer,
    );

    // Drift of *known*-sample representations away from the vanilla model —
    // the quantitative core of the figure: fine-tuning displaces them,
    // InfuserKI barely moves them.
    let drift = |states: &[Vec<f32>]| {
        let mut total = 0.0f32;
        let mut count = 0;
        for (i, s) in states.iter().enumerate() {
            if labels[i] {
                total += l2(s, &vanilla[i]);
                count += 1;
            }
        }
        total / count.max(1) as f32
    };
    let drift_ft = drift(&tuned);
    let drift_ik = drift(&infused);

    let mut csv = String::from("panel,index,known,x,y\n");
    let mut silhouettes = Vec::new();
    for (panel, states) in [
        ("vanilla", &vanilla),
        ("finetuned", &tuned),
        ("infuserki", &infused),
    ] {
        let proj = tsne(states, 20.0, 300, args.seed);
        silhouettes.push((
            panel,
            infuserki_eval::statistics::silhouette_2d(&proj, &labels),
        ));
        for (i, (x, y)) in proj.iter().enumerate() {
            let _ = writeln!(csv, "{panel},{i},{},{x},{y}", labels[i]);
        }
    }
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/fig1.csv", &csv);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Fig. 1 — layer-{} representation drift (t-SNE coords in results/fig1.csv)",
        layer + 1
    );
    let _ = writeln!(
        out,
        "mean L2 drift of known-sample representations vs. vanilla:"
    );
    let _ = writeln!(out, "  fine-tuned : {drift_ft:.4}");
    let _ = writeln!(out, "  InfuserKI  : {drift_ik:.4}");
    let _ = writeln!(
        out,
        "shape check (paper: fine-tuning scrambles known representations, InfuserKI preserves them): {}",
        if drift_ft > drift_ik { "HOLDS" } else { "INVERTED" }
    );
    let _ = writeln!(out, "known/unknown silhouette of each t-SNE panel:");
    for (panel, s) in silhouettes {
        let _ = writeln!(out, "  {panel:<10} {s:.3}");
    }
    save_text("fig1", &out);
    out
}

fn l2(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

/// Fig. 5 — adapter-position sweep: bottom/middle/top FFN thirds, attention
/// layers, and the full FFN range.
pub fn fig5(args: Args) -> String {
    let n = args.scale.pick(120, 300, 2500);
    let p = prepare(&WorldConfig::new(Domain::Umls, n, args.seed));
    let n_layers = p.world.base.n_layers();

    let mut out = String::new();
    let _ = writeln!(out, "## Fig. 5 — impact of adapter positions (paper layer ranges mapped to {n_layers}-layer model)");
    let _ = writeln!(
        out,
        "{:<12} {:>5} {:>5} {:>9}",
        "Placement", "NR", "RR", "F1_Unseen"
    );
    for (name, placement) in placement_rows(n_layers) {
        eprintln!("[fig5] running placement {name}…");
        let mut cfg = InfuserKiConfig::for_model(n_layers);
        cfg.placement = placement;
        let mut method = InfuserKiMethod::new(cfg, &p.world.base, p.world.store.n_relations());
        train_infuserki(
            &p.world.base,
            &mut method,
            &p.data,
            &infuserki_core::TrainConfig::default(),
        );
        let eval = evaluate_method(
            &p.world.base,
            &method.hook(),
            &p.world.tokenizer,
            &p.world.bank,
            &p.known,
            &p.unknown,
        );
        let _ = writeln!(
            out,
            "{:<12} {:>5.2} {:>5.2} {:>9.2}",
            name, eval.nr, eval.rr, eval.f1_unseen
        );
    }
    save_text("fig5", &out);
    out
}

/// Fig. 6 — infusing scores per layer for known vs. unknown samples.
pub fn fig6(args: Args) -> String {
    let n = args.scale.pick(120, 300, 2500);
    let p = prepare(&WorldConfig::new(Domain::Umls, n, args.seed));
    let method = train_default_infuserki(&p);

    let cap = 80;
    let known: Vec<usize> = p.known.iter().take(cap).copied().collect();
    let unknown: Vec<usize> = p.unknown.iter().take(cap).copied().collect();
    let w = &p.world;
    let prof_known = gate_profile(&w.base, &method, &w.tokenizer, &w.bank, &known);
    let prof_unknown = gate_profile(&w.base, &method, &w.tokenizer, &w.bank, &unknown);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Fig. 6 — infusing scores r^l, known vs. unknown samples"
    );
    let _ = writeln!(out, "{:<7} {:>10} {:>10}", "layer", "known", "unknown");
    let mut mean_known = 0.0;
    let mut mean_unknown = 0.0;
    let mut csv = String::from("layer,known,unknown\n");
    for (i, &(layer, k)) in prof_known.iter().enumerate() {
        let u = prof_unknown[i].1;
        let _ = writeln!(out, "{:<7} {:>10.3} {:>10.3}", layer + 1, k, u);
        let _ = writeln!(csv, "{},{k},{u}", layer + 1);
        mean_known += k;
        mean_unknown += u;
    }
    let nl = prof_known.len().max(1) as f32;
    mean_known /= nl;
    mean_unknown /= nl;
    let _ = writeln!(
        out,
        "mean: known {mean_known:.3}, unknown {mean_unknown:.3} — shape check (paper: scores lower on known samples): {}",
        if mean_unknown > mean_known { "HOLDS" } else { "INVERTED" }
    );
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/fig6.csv", csv);
    save_text("fig6", &out);
    out
}

/// Fig. 7 — case study: option probability distributions for the base model,
/// LoRA, and InfuserKI on (a) an injected fact and (b) a retained fact LoRA
/// forgets.
pub fn fig7(args: Args) -> String {
    let n = args.scale.pick(120, 300, 2500);
    let p = prepare(&WorldConfig::new(Domain::Umls, n, args.seed));
    let method = train_default_infuserki(&p);
    let lora = train_lora(&p);
    let w = &p.world;

    let base_outs = answer_template(&w.base, &NoHook, &w.tokenizer, &w.bank, 0);
    let lora_outs = answer_template(&w.base, &lora, &w.tokenizer, &w.bank, 0);
    let ik_outs = answer_template(&w.base, &method.hook(), &w.tokenizer, &w.bank, 0);
    let ok = |outs: &[McqOutcome], i: usize| outs[i].correct();

    // Case (a): initially unknown, now answered correctly by LoRA and InfuserKI.
    let case_a = p
        .unknown
        .iter()
        .copied()
        .find(|&i| ok(&lora_outs, i) && ok(&ik_outs, i))
        .or_else(|| p.unknown.iter().copied().find(|&i| ok(&ik_outs, i)))
        .unwrap_or(*p.unknown.first().unwrap_or(&0));
    // Case (b): initially known; LoRA forgets, InfuserKI remembers.
    let case_b = p
        .known
        .iter()
        .copied()
        .find(|&i| ok(&base_outs, i) && !ok(&lora_outs, i) && ok(&ik_outs, i))
        .or_else(|| {
            p.known
                .iter()
                .copied()
                .find(|&i| ok(&base_outs, i) && !ok(&lora_outs, i))
        })
        .unwrap_or(*p.known.first().unwrap_or(&0));

    let cases = [("(a) injected fact", case_a), ("(b) retained fact", case_b)];
    // Both case MCQs score in one batched pass per method.
    let case_mcqs: Vec<_> = cases
        .iter()
        .map(|&(_, i)| w.bank.mcq(0, i).clone())
        .collect();
    let rows = [
        (
            "Vanilla",
            option_probs_many(&w.base, &NoHook, &w.tokenizer, &case_mcqs),
        ),
        (
            "LoRA",
            option_probs_many(&w.base, &lora, &w.tokenizer, &case_mcqs),
        ),
        (
            "InfuserKI",
            option_probs_many(&w.base, &method.hook(), &w.tokenizer, &case_mcqs),
        ),
    ];

    let mut out = String::new();
    let _ = writeln!(out, "## Fig. 7 — case study (option probabilities)");
    for (ci, &(label, _)) in cases.iter().enumerate() {
        let mcq = &case_mcqs[ci];
        let _ = writeln!(out, "\n{label}: {}", mcq.question);
        for (i, opt) in mcq.options.iter().enumerate() {
            let star = if i == mcq.correct { "*" } else { " " };
            let _ = writeln!(out, "  {star}({}) {opt}", (b'a' + i as u8) as char);
        }
        for (name, probs_all) in &rows {
            let probs = probs_all[ci];
            let _ = writeln!(
                out,
                "  {name:<10} a {:.3}  b {:.3}  c {:.3}  d {:.3}",
                probs[0], probs[1], probs[2], probs[3]
            );
        }
    }
    save_text("fig7", &out);
    out
}
