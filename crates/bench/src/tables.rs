//! Library entry points for the four tables (shared by the per-table
//! binaries and `run_all`).

use infuserki_core::InfuserKiConfig;
use infuserki_eval::world::{Domain, WorldConfig};

use crate::cli::Args;
use crate::runner::{run_experiment, save_report, ExperimentConfig, ExperimentReport, MethodKind};

/// Table 1 — UMLS 2.5k-scale method comparison.
pub fn table1(args: Args) -> ExperimentReport {
    let n = args.scale.pick(120, 300, 2500);
    let world = WorldConfig::new(Domain::Umls, n, args.seed);
    let cfg = ExperimentConfig::standard(world);
    let report = run_experiment("Table 1 — UMLS 2.5k-scale", &cfg);
    save_report(&report, "table1");
    report
}

/// Table 2 — MetaQA method comparison.
pub fn table2(args: Args) -> ExperimentReport {
    let n = args.scale.pick(120, 300, 2900);
    let world = WorldConfig::new(Domain::MetaQa, n, args.seed);
    let cfg = ExperimentConfig::standard(world);
    let report = run_experiment("Table 2 — MetaQA KG", &cfg);
    save_report(&report, "table2");
    report
}

/// Table 3 — UMLS 10× scale-up.
pub fn table3(args: Args) -> ExperimentReport {
    let n = args.scale.pick(240, 900, 25_000);
    let world = WorldConfig::new(Domain::Umls, n, args.seed);
    let mut cfg = ExperimentConfig::standard(world);
    // Larger corpus, fewer epochs: flat wall-time, like the paper's fixed
    // per-epoch budget.
    cfg.train.epochs_qa = cfg.train.epochs_qa.saturating_sub(1).max(2);
    let report = run_experiment("Table 3 — UMLS 25k-scale (10x Table 1)", &cfg);
    save_report(&report, "table3");
    report
}

/// Table 4 — ablation study.
pub fn table4(args: Args) -> ExperimentReport {
    let n = args.scale.pick(120, 300, 2500);
    let world = WorldConfig::new(Domain::Umls, n, args.seed);

    let full = InfuserKiConfig::for_model(world.n_layers);
    let mut wo_rl = full.clone();
    wo_rl.ablation.infuser_pretrain = false;
    let mut wo_ro = full.clone();
    wo_ro.ablation.use_infuser = false;
    let mut wo_rc = full.clone();
    wo_rc.ablation.use_rc = false;

    let mut cfg = ExperimentConfig::standard(world);
    cfg.methods = vec![
        MethodKind::InfuserKi(full),
        MethodKind::InfuserKi(wo_rl),
        MethodKind::InfuserKi(wo_ro),
        MethodKind::InfuserKi(wo_rc),
    ];
    let report = run_experiment("Table 4 — Ablation study (UMLS)", &cfg);
    save_report(&report, "table4");
    report
}
