//! # infuserki-bench
//!
//! The benchmark harness: a shared experiment [`runner`] plus one binary per
//! table and figure of the paper (see `DESIGN.md` §4 for the index):
//!
//! | binary   | regenerates                                   |
//! |----------|-----------------------------------------------|
//! | `table1` | Table 1 — UMLS 2.5k-scale method comparison   |
//! | `table2` | Table 2 — MetaQA method comparison            |
//! | `table3` | Table 3 — UMLS 25k-scale (10×) scale-up       |
//! | `table4` | Table 4 — ablation study                      |
//! | `fig1`   | Fig. 1 — t-SNE of 10th-layer representations  |
//! | `fig5`   | Fig. 5 — adapter-position sweep               |
//! | `fig6`   | Fig. 6 — infusing scores known vs. unknown    |
//! | `fig7`   | Fig. 7 — case-study option probabilities      |
//! | `run_all`| everything above, appending to EXPERIMENTS.md |
//!
//! Criterion microbenches live in `benches/` (substrate performance and
//! design-choice ablations).

pub mod cli;
pub mod extensions;
pub mod figs;
pub mod runner;
pub mod swap;
pub mod tables;

pub use cli::{parse_args, Scale};
pub use runner::{run_experiment, ExperimentConfig, ExperimentReport, MethodKind, MethodResult};
