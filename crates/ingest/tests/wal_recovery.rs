//! Crash-recovery property suite for the WAL-backed triple store.
//!
//! The durability contract under test: a crash at ANY byte of the log
//! loses at most the un-fsynced tail, and recovery (replaying the WAL
//! tail onto the latest valid snapshot) reconstructs a state **bitwise
//! equal** (canonical JSON bytes) to a process that applied exactly the
//! surviving prefix and never crashed. Randomized over delta sequences,
//! snapshot cadences and crash offsets with a seeded RNG —
//! deterministic, but covering torn records, snapshot boundaries and
//! empty-log edges.

use std::path::{Path, PathBuf};

use infuserki_ingest::{recover, AppendOutcome, DurableStore, KgState, StoreOptions, TripleDelta};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn tmp(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("infuserki_walrec_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Generates a plausible random delta stream: mostly adds over a small
/// name pool (so duplicates and re-adds happen), with retracts of live
/// facts mixed in.
fn random_deltas(rng: &mut ChaCha8Rng, n: usize) -> Vec<TripleDelta> {
    let mut live: Vec<(String, String, String)> = Vec::new();
    let mut out = Vec::new();
    while out.len() < n {
        if !live.is_empty() && rng.gen_range(0..4) == 0 {
            let (s, r, o) = live.swap_remove(rng.gen_range(0..live.len()));
            out.push(TripleDelta::retract(&s, &r, &o));
        } else {
            let s = format!("entity {}", rng.gen_range(0..10));
            let r = format!("relation {}", rng.gen_range(0..3));
            let o = format!("entity {}", rng.gen_range(0..10));
            if !live.iter().any(|t| *t == (s.clone(), r.clone(), o.clone())) {
                live.push((s.clone(), r.clone(), o.clone()));
                out.push(TripleDelta::add(&s, &r, &o));
            }
        }
    }
    out
}

/// The never-crashed reference: the first `k` accepted deltas folded into a
/// fresh state, exactly as a process that only ever saw those would hold it.
fn reference_state(accepted: &[TripleDelta], k: u64) -> KgState {
    let mut state = KgState::default();
    for (i, d) in accepted.iter().take(k as usize).enumerate() {
        state.apply(d);
        state.seq = i as u64 + 1;
    }
    state
}

fn wal_path(dir: &Path) -> PathBuf {
    dir.join(infuserki_ingest::WAL_FILE)
}

/// Iterations for the randomized property loops. CI's weekly deep-fuzz job
/// raises this ~10× via `INFUSERKI_FUZZ_ITERS`; the default keeps the
/// per-push suite fast.
fn fuzz_iters() -> u64 {
    std::env::var("INFUSERKI_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(24)
}

#[test]
fn recovery_at_random_crash_points_is_bitwise_equal_to_uncrashed() {
    for iter in 0..fuzz_iters() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xC4A5 ^ iter);
        let dir = tmp(&format!("prop{iter}"));
        let opts = StoreOptions {
            sync_every: [1, 4, 32][rng.gen_range(0..3usize)],
            snapshot_every: [0, 3, 7][rng.gen_range(0..3usize)],
            functional: false,
        };
        let deltas = random_deltas(&mut rng, 30);
        let mut ds = DurableStore::open(&dir, opts.clone()).unwrap();
        let mut accepted = Vec::new();
        for d in &deltas {
            if let AppendOutcome::Accepted(_) = ds.append(d).unwrap() {
                accepted.push(d.clone());
            }
        }
        ds.sync().unwrap();
        let full_len = ds.wal_bytes();
        drop(ds);

        // Sanity: recovering the untouched dir reproduces the full prefix.
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.state.seq, accepted.len() as u64, "iter {iter}");
        assert_eq!(
            rec.state.canonical_bytes(),
            reference_state(&accepted, rec.state.seq).canonical_bytes(),
            "iter {iter}: uncrashed recovery diverged"
        );

        // Crash: truncate the log at a random byte (possibly mid-record).
        let crash_at = rng.gen_range(0..=full_len);
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(wal_path(&dir))
            .unwrap();
        f.set_len(crash_at).unwrap();
        drop(f);

        let rec = recover(&dir).unwrap();
        // The surviving prefix length is whatever recovery says it is; the
        // property is that the state is EXACTLY the fold of that prefix.
        assert!(rec.state.seq <= accepted.len() as u64);
        let reference = reference_state(&accepted, rec.state.seq);
        assert_eq!(
            rec.state.canonical_bytes(),
            reference.canonical_bytes(),
            "iter {iter}: crash at byte {crash_at}/{full_len} diverged at seq {}",
            rec.state.seq
        );

        // Ingestion resumes over the crashed dir: the writer truncates the
        // torn tail and continues the sequence without gaps.
        let mut ds = DurableStore::open(&dir, opts).unwrap();
        let resumed_seq = ds.state().seq;
        assert_eq!(resumed_seq, rec.state.seq, "iter {iter}");
        let novel = TripleDelta::add(format!("post crash {iter}"), "relation 0", "entity 0");
        match ds.append(&novel).unwrap() {
            AppendOutcome::Accepted(seq) => assert_eq!(seq, resumed_seq + 1, "iter {iter}"),
            AppendOutcome::Rejected(r) => panic!("iter {iter}: novel add rejected: {r}"),
        }
        ds.sync().unwrap();
        drop(ds);
        let rec2 = recover(&dir).unwrap();
        assert_eq!(rec2.state.seq, resumed_seq + 1, "iter {iter}");
        assert!(rec2.state.is_live(&rec2.state.resolve(&novel).unwrap()));

        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn recovery_survives_losing_wal_bytes_behind_a_snapshot() {
    // A snapshot can outlive truncated WAL bytes (e.g. the log is damaged
    // right after a snapshot landed). Recovery then stands on the snapshot
    // alone — still bitwise equal to the fold of the covered prefix.
    let dir = tmp("snapgap");
    let opts = StoreOptions {
        sync_every: 1,
        snapshot_every: 5,
        functional: false,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let deltas = random_deltas(&mut rng, 12);
    let mut ds = DurableStore::open(&dir, opts).unwrap();
    let mut accepted = Vec::new();
    for d in &deltas {
        if let AppendOutcome::Accepted(_) = ds.append(d).unwrap() {
            accepted.push(d.clone());
        }
    }
    ds.sync().unwrap();
    let snap_seq = ds.last_snapshot_seq();
    assert!(snap_seq >= 5, "snapshot cadence should have fired");
    drop(ds);

    // Truncate the WAL to empty: everything lives in the snapshot now.
    std::fs::OpenOptions::new()
        .write(true)
        .open(wal_path(&dir))
        .unwrap()
        .set_len(0)
        .unwrap();
    let rec = recover(&dir).unwrap();
    assert_eq!(rec.state.seq, snap_seq);
    assert_eq!(
        rec.state.canonical_bytes(),
        reference_state(&accepted, snap_seq).canonical_bytes()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_is_recovery_equivalent_and_resumable() {
    // `compact()` = snapshot + fresh empty log anchored at the snapshot
    // seq. The contract: recovery over the compacted dir is bitwise equal
    // to recovery over the full history, sequence numbering continues
    // unbroken, and post-compaction appends survive another crash/reopen.
    for iter in 0..fuzz_iters().min(12) {
        let mut rng = ChaCha8Rng::seed_from_u64(0xC09A ^ iter);
        let dir = tmp(&format!("compact{iter}"));
        let opts = StoreOptions {
            sync_every: [1, 4, 32][rng.gen_range(0..3usize)],
            snapshot_every: [0, 3, 7][rng.gen_range(0..3usize)],
            functional: false,
        };
        let deltas = random_deltas(&mut rng, 40);
        let mut ds = DurableStore::open(&dir, opts.clone()).unwrap();
        let mut accepted = Vec::new();
        for d in &deltas {
            if let AppendOutcome::Accepted(_) = ds.append(d).unwrap() {
                accepted.push(d.clone());
            }
        }
        let pre_seq = ds.state().seq;
        let before = ds.state().canonical_bytes();
        assert!(ds.wal_bytes() > 0, "iter {iter}: log should be non-empty");

        ds.compact().unwrap();
        assert_eq!(ds.wal_bytes(), 0, "iter {iter}: compaction empties the log");
        assert_eq!(ds.last_snapshot_seq(), pre_seq, "iter {iter}");
        assert_eq!(ds.state().canonical_bytes(), before, "iter {iter}");

        // Recovery over the compacted dir stands on the snapshot alone and
        // reproduces the exact fold of the full accepted history.
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.state.seq, pre_seq, "iter {iter}");
        assert_eq!(
            rec.state.canonical_bytes(),
            reference_state(&accepted, pre_seq).canonical_bytes(),
            "iter {iter}: compacted recovery diverged from uncompacted history"
        );

        // Appends continue the sequence unbroken through the same handle...
        let novel = TripleDelta::add(format!("post compact {iter}"), "relation 0", "entity 0");
        match ds.append(&novel).unwrap() {
            AppendOutcome::Accepted(seq) => assert_eq!(seq, pre_seq + 1, "iter {iter}"),
            AppendOutcome::Rejected(r) => panic!("iter {iter}: post-compact add rejected: {r}"),
        }
        ds.sync().unwrap();
        drop(ds);
        // ...and survive a reopen: snapshot + new log replay together.
        let ds2 = DurableStore::open(&dir, opts).unwrap();
        assert_eq!(ds2.state().seq, pre_seq + 1, "iter {iter}");
        assert!(ds2.state().is_live(&ds2.state().resolve(&novel).unwrap()));
        let mut with_novel = accepted.clone();
        with_novel.push(novel);
        assert_eq!(
            ds2.state().canonical_bytes(),
            reference_state(&with_novel, pre_seq + 1).canonical_bytes(),
            "iter {iter}: post-compaction append lost or reordered"
        );
        drop(ds2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn corrupt_snapshot_falls_back_to_older_evidence() {
    let dir = tmp("badsnap");
    let opts = StoreOptions {
        sync_every: 1,
        snapshot_every: 4,
        functional: false,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(5150);
    let deltas = random_deltas(&mut rng, 10);
    let mut ds = DurableStore::open(&dir, opts).unwrap();
    let mut accepted = Vec::new();
    for d in &deltas {
        if let AppendOutcome::Accepted(_) = ds.append(d).unwrap() {
            accepted.push(d.clone());
        }
    }
    ds.sync().unwrap();
    drop(ds);

    // Flip bytes in the NEWEST snapshot; the checksum must catch it and
    // recovery must fall back (older snapshot or pure replay) — with the
    // full WAL intact the final state is unchanged either way.
    let mut snaps: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            p.file_name()?
                .to_str()?
                .starts_with("snapshot-")
                .then_some(p)
        })
        .collect();
    snaps.sort();
    let newest = snaps.last().expect("cadence produced snapshots").clone();
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&newest, &bytes).unwrap();

    let rec = recover(&dir).unwrap();
    assert_eq!(rec.state.seq, accepted.len() as u64);
    assert_eq!(
        rec.state.canonical_bytes(),
        reference_state(&accepted, rec.state.seq).canonical_bytes()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
