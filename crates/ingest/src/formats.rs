//! Multi-format delta parsing: JSONL, CSV, TSV, and the repo's original
//! pipe-separated triple lines, all with per-record positions, typed
//! rejects, and in-batch dedup.
//!
//! Parsing never fails as a whole: every input line either becomes a
//! [`ParsedDelta`] or a [`RejectedRecord`] — a bad row cannot poison the
//! rest of a feed.

use std::path::Path;

use crate::delta::{DeltaOp, DeltaWire, RejectKind, RejectedRecord, TripleDelta};

/// Supported input encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaFormat {
    /// One JSON object per line: `{"op":"add","s":..,"r":..,"o":..}`
    /// (`op` defaults to `add` when absent).
    Jsonl,
    /// Comma-separated `op,subject,relation,object` (or three columns for
    /// an implicit add); double quotes escape commas.
    Csv,
    /// Tab-separated, same column rules as CSV, no quoting.
    Tsv,
    /// The repo's `subject|relation|object` lines, optionally prefixed
    /// with `+ ` / `- ` (or `add ` / `retract `) for the op.
    Pipe,
}

impl DeltaFormat {
    /// Picks a format from a file name's extension. `.jsonl`/`.json` →
    /// JSONL, `.csv` → CSV, `.tsv` → TSV, anything else (including the
    /// seed corpora's `.txt`) → pipe.
    pub fn from_path(path: impl AsRef<Path>) -> Self {
        match path
            .as_ref()
            .extension()
            .and_then(|e| e.to_str())
            .unwrap_or("")
            .to_ascii_lowercase()
            .as_str()
        {
            "jsonl" | "json" => DeltaFormat::Jsonl,
            "csv" => DeltaFormat::Csv,
            "tsv" => DeltaFormat::Tsv,
            _ => DeltaFormat::Pipe,
        }
    }

    /// Parses a format name (`jsonl`, `csv`, `tsv`, `pipe`).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "jsonl" | "json" => Some(DeltaFormat::Jsonl),
            "csv" => Some(DeltaFormat::Csv),
            "tsv" => Some(DeltaFormat::Tsv),
            "pipe" | "txt" => Some(DeltaFormat::Pipe),
            _ => None,
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            DeltaFormat::Jsonl => "jsonl",
            DeltaFormat::Csv => "csv",
            DeltaFormat::Tsv => "tsv",
            DeltaFormat::Pipe => "pipe",
        }
    }
}

/// One accepted delta with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedDelta {
    /// The delta.
    pub delta: TripleDelta,
    /// 1-based source line it came from.
    pub line: usize,
}

/// Everything one parse pass produced.
#[derive(Debug, Clone, Default)]
pub struct ParseBatch {
    /// Records that passed syntax, field, and in-batch-dedup checks.
    pub accepted: Vec<ParsedDelta>,
    /// Records turned away, with positions and reasons.
    pub rejects: Vec<RejectedRecord>,
}

/// Parses `text` in the given format. Blank lines and `#` comments are
/// skipped in the line-oriented formats; exact `(op, s, r, o)` repeats
/// within the batch are rejected as [`RejectKind::DuplicateInBatch`].
pub fn parse_deltas(text: &str, format: DeltaFormat) -> ParseBatch {
    let mut batch = ParseBatch::default();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match parse_line(raw, format) {
            Ok(delta) => accept(&mut batch, delta, raw, line),
            Err((col, detail)) => batch.rejects.push(RejectedRecord {
                line,
                col,
                kind: RejectKind::Syntax,
                detail,
            }),
        }
    }
    batch
}

/// Runs field/dedup validation on one syntactically-good delta.
fn accept(batch: &mut ParseBatch, delta: TripleDelta, raw: &str, line: usize) {
    let col = raw.len() - raw.trim_start().len() + 1;
    if delta.has_empty_field() {
        batch.rejects.push(RejectedRecord {
            line,
            col,
            kind: RejectKind::EmptyField,
            detail: format!("empty field in `{delta}`"),
        });
        return;
    }
    if batch.accepted.iter().any(|p| p.delta == delta) {
        batch.rejects.push(RejectedRecord {
            line,
            col,
            kind: RejectKind::DuplicateInBatch,
            detail: format!("duplicate of an earlier record in this batch: `{delta}`"),
        });
        return;
    }
    batch.accepted.push(ParsedDelta { delta, line });
}

/// Parses one non-blank line. Errors are `(1-based column, message)`.
fn parse_line(raw: &str, format: DeltaFormat) -> Result<TripleDelta, (usize, String)> {
    match format {
        DeltaFormat::Jsonl => parse_jsonl_line(raw),
        DeltaFormat::Csv => parse_columns(raw, &split_csv(raw.trim())),
        DeltaFormat::Tsv => {
            let cols: Vec<String> = raw
                .trim()
                .split('\t')
                .map(|c| c.trim().to_string())
                .collect();
            parse_columns(raw, &cols)
        }
        DeltaFormat::Pipe => parse_pipe_line(raw),
    }
}

fn parse_jsonl_line(raw: &str) -> Result<TripleDelta, (usize, String)> {
    let wire: DeltaWire = match serde_json::from_str(raw.trim()) {
        Ok(w) => w,
        Err(e) => return Err((1, format!("bad JSON delta: {e}"))),
    };
    TripleDelta::try_from(wire).map_err(|e| {
        let col = raw.find("\"op\"").map(|i| i + 1).unwrap_or(1);
        (col, e)
    })
}

/// Shared column logic for CSV/TSV: 4 columns = `op,s,r,o`; 3 columns = an
/// implicit add.
fn parse_columns(raw: &str, cols: &[String]) -> Result<TripleDelta, (usize, String)> {
    let base = raw.len() - raw.trim_start().len() + 1;
    match cols.len() {
        3 => Ok(TripleDelta::add(&cols[0], &cols[1], &cols[2])),
        4 => {
            let op = DeltaOp::parse(cols[0].as_str())
                .ok_or_else(|| (base, format!("unknown op `{}`", cols[0])))?;
            Ok(TripleDelta {
                op,
                subject: cols[1].clone(),
                relation: cols[2].clone(),
                object: cols[3].clone(),
            })
        }
        n => Err((base, format!("expected 3 or 4 columns, found {n}"))),
    }
}

/// Minimal CSV splitter: commas separate fields; a field wrapped in double
/// quotes may contain commas, and `""` inside quotes is a literal quote.
fn split_csv(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes && chars.peek() == Some(&'"') => {
                chars.next();
                cur.push('"');
            }
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => fields.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    fields.push(cur);
    fields.iter().map(|f| f.trim().to_string()).collect()
}

/// `subject|relation|object` with an optional leading op token, matching
/// `kg::io`'s column rules (only the object may contain `|`).
fn parse_pipe_line(raw: &str) -> Result<TripleDelta, (usize, String)> {
    let base = raw.len() - raw.trim_start().len();
    let trimmed = raw.trim();
    let (op, rest, rest_base) = match trimmed.split_once(char::is_whitespace) {
        Some((tok, rest)) if DeltaOp::parse(tok).is_some() => {
            let consumed = trimmed.len() - rest.trim_start().len();
            (
                DeltaOp::parse(tok).unwrap(),
                rest.trim_start(),
                base + consumed,
            )
        }
        _ => (DeltaOp::Add, trimmed, base),
    };
    let Some((subject, tail)) = rest.split_once('|') else {
        return Err((
            rest_base + 1,
            format!("expected `subject|relation|object`, found `{trimmed}`"),
        ));
    };
    let Some((relation, object)) = tail.split_once('|') else {
        return Err((
            rest_base + subject.len() + 2,
            "missing `|` between relation and object".to_string(),
        ));
    };
    Ok(TripleDelta {
        op,
        subject: subject.trim().to_string(),
        relation: relation.trim().to_string(),
        object: object.trim().to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_sniffing_from_extension() {
        assert_eq!(DeltaFormat::from_path("feed.jsonl"), DeltaFormat::Jsonl);
        assert_eq!(DeltaFormat::from_path("x/feed.CSV"), DeltaFormat::Csv);
        assert_eq!(DeltaFormat::from_path("feed.tsv"), DeltaFormat::Tsv);
        assert_eq!(DeltaFormat::from_path("triplets.txt"), DeltaFormat::Pipe);
        assert_eq!(DeltaFormat::from_path("no_ext"), DeltaFormat::Pipe);
    }

    #[test]
    fn jsonl_parses_adds_and_retracts() {
        let text = concat!(
            "{\"op\":\"add\",\"s\":\"aspirin\",\"r\":\"treats\",\"o\":\"headache\"}\n",
            "{\"op\":\"retract\",\"s\":\"aspirin\",\"r\":\"treats\",\"o\":\"headache\"}\n",
            "not json\n",
        );
        let batch = parse_deltas(text, DeltaFormat::Jsonl);
        assert_eq!(batch.accepted.len(), 2);
        assert_eq!(batch.accepted[0].delta.op, DeltaOp::Add);
        assert_eq!(batch.accepted[1].delta.op, DeltaOp::Retract);
        assert_eq!(batch.rejects.len(), 1);
        assert_eq!(batch.rejects[0].line, 3);
        assert_eq!(batch.rejects[0].kind, RejectKind::Syntax);
    }

    #[test]
    fn csv_quoting_and_implicit_add() {
        let text = "aspirin,treats,headache\nretract,\"a,spirin\",treats,headache\n";
        let batch = parse_deltas(text, DeltaFormat::Csv);
        assert!(batch.rejects.is_empty(), "{:?}", batch.rejects);
        assert_eq!(
            batch.accepted[0].delta,
            TripleDelta::add("aspirin", "treats", "headache")
        );
        assert_eq!(batch.accepted[1].delta.subject, "a,spirin");
        assert_eq!(batch.accepted[1].delta.op, DeltaOp::Retract);
    }

    #[test]
    fn tsv_column_count_errors_carry_position() {
        let batch = parse_deltas("a\tb\n", DeltaFormat::Tsv);
        assert_eq!(batch.accepted.len(), 0);
        assert_eq!(batch.rejects[0].line, 1);
        assert!(batch.rejects[0].detail.contains("expected 3 or 4"));
    }

    #[test]
    fn pipe_accepts_op_prefixes_and_plain_lines() {
        let text = "aspirin | treats | headache\n- aspirin | treats | headache\nretract b|r|c\n";
        let batch = parse_deltas(text, DeltaFormat::Pipe);
        assert!(batch.rejects.is_empty(), "{:?}", batch.rejects);
        assert_eq!(batch.accepted[0].delta.op, DeltaOp::Add);
        assert_eq!(batch.accepted[1].delta.op, DeltaOp::Retract);
        assert_eq!(batch.accepted[2].delta, TripleDelta::retract("b", "r", "c"));
    }

    #[test]
    fn pipe_object_may_contain_pipes() {
        let batch = parse_deltas("a|r|c|d\n", DeltaFormat::Pipe);
        assert_eq!(batch.accepted[0].delta.object, "c|d");
    }

    #[test]
    fn in_batch_duplicates_rejected_across_all_formats() {
        let text = "a|r|b\na|r|b\n";
        let batch = parse_deltas(text, DeltaFormat::Pipe);
        assert_eq!(batch.accepted.len(), 1);
        assert_eq!(batch.rejects.len(), 1);
        assert_eq!(batch.rejects[0].kind, RejectKind::DuplicateInBatch);
        assert_eq!(batch.rejects[0].line, 2);
        // An add and a retract of the same triple are NOT duplicates.
        let batch = parse_deltas("a|r|b\n- a|r|b\n", DeltaFormat::Pipe);
        assert_eq!(batch.accepted.len(), 2);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let batch = parse_deltas("# header\n\na|r|b\n", DeltaFormat::Pipe);
        assert_eq!(batch.accepted.len(), 1);
        assert_eq!(batch.accepted[0].line, 3);
    }

    #[test]
    fn empty_fields_rejected_with_kind() {
        let batch = parse_deltas("a||b\n", DeltaFormat::Pipe);
        assert_eq!(batch.rejects[0].kind, RejectKind::EmptyField);
    }
}
