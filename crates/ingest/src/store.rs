//! The durable KG store: a materialized [`TripleStore`] + tombstone view of
//! the WAL, with checksummed snapshots and crash recovery.
//!
//! # State model
//!
//! [`KgState`] is a deterministic fold over the delta sequence: entities and
//! relations intern in first-appearance (WAL) order, triples append in WAL
//! order, and retracts tombstone rather than remove (the underlying
//! [`TripleStore`] has no removal API, and tombstones keep interning order —
//! and therefore ids — stable across replays). A *live* triple is one that
//! is asserted and not tombstoned; re-adding a tombstoned triple clears its
//! tombstone.
//!
//! # Recovery rule
//!
//! `state = fold(latest valid snapshot, WAL records with seq > snapshot.seq)`
//!
//! Snapshots are whole-state JSON with a CRC-32 header line; a corrupt
//! snapshot is skipped in favor of the next-newest (ultimately the empty
//! state + full replay). Because the fold is deterministic and replay drops
//! only a torn WAL tail, the recovered state is bitwise-equal (canonical
//! JSON bytes) to a never-crashed store over the surviving record prefix —
//! property-tested in `tests/wal_recovery.rs`.

use std::fs;
use std::path::{Path, PathBuf};

use infuserki_kg::{Triple, TripleStore};
use serde::{Deserialize, Serialize};

use crate::delta::{DeltaOp, RejectKind, RejectedRecord, TripleDelta};
use crate::wal::{crc32, read_wal, WalError, WalWriter, WAL_FILE};

/// Materialized view of the delta log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KgState {
    /// Asserted triples (including tombstoned ones), interned in WAL order.
    pub store: TripleStore,
    /// Retracted triples, in retraction order.
    pub tombstones: Vec<Triple>,
    /// Sequence number of the last applied record.
    pub seq: u64,
}

/// What applying one delta did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applied {
    /// A new triple became live.
    Added,
    /// A tombstoned triple became live again.
    Readded,
    /// The triple was already live (no-op).
    AlreadyLive,
    /// A live triple was tombstoned.
    Retracted,
    /// Retract of a triple that was not live (no-op).
    RetractMissing,
}

impl KgState {
    /// Applies one delta unconditionally (the WAL is the source of truth;
    /// validation happens before a delta is logged, in
    /// [`DurableStore::append`]). Total and deterministic.
    pub fn apply(&mut self, delta: &TripleDelta) -> Applied {
        match delta.op {
            DeltaOp::Add => {
                let h = self.store.intern_entity(&delta.subject);
                let r = self.store.intern_relation(&delta.relation);
                let t = self.store.intern_entity(&delta.object);
                let triple = Triple::new(h, r, t);
                if let Some(i) = self.tombstones.iter().position(|x| *x == triple) {
                    self.tombstones.remove(i);
                    return Applied::Readded;
                }
                if self.store.contains(&triple) {
                    Applied::AlreadyLive
                } else {
                    self.store.insert(triple);
                    Applied::Added
                }
            }
            DeltaOp::Retract => {
                let (Some(h), Some(r), Some(t)) = (
                    self.store.entity_by_name(&delta.subject),
                    self.store.relation_by_name(&delta.relation),
                    self.store.entity_by_name(&delta.object),
                ) else {
                    return Applied::RetractMissing;
                };
                let triple = Triple::new(h, r, t);
                if !self.store.contains(&triple) || self.tombstones.contains(&triple) {
                    return Applied::RetractMissing;
                }
                self.tombstones.push(triple);
                Applied::Retracted
            }
        }
    }

    /// True when `triple` is asserted and not tombstoned.
    pub fn is_live(&self, triple: &Triple) -> bool {
        self.store.contains(triple) && !self.tombstones.contains(triple)
    }

    /// Resolves a delta's names to a triple of this state, if all are known.
    pub fn resolve(&self, delta: &TripleDelta) -> Option<Triple> {
        Some(Triple::new(
            self.store.entity_by_name(&delta.subject)?,
            self.store.relation_by_name(&delta.relation)?,
            self.store.entity_by_name(&delta.object)?,
        ))
    }

    /// Live triples in store (WAL) order.
    pub fn live_triples(&self) -> Vec<Triple> {
        self.store
            .triples()
            .iter()
            .filter(|t| !self.tombstones.contains(t))
            .copied()
            .collect()
    }

    /// Number of live triples.
    pub fn live_len(&self) -> usize {
        self.store.len() - self.tombstones.len()
    }

    /// Canonical serialized form: the bytes two states must share to count
    /// as "bitwise-equal". Serialized fields of [`TripleStore`] are plain
    /// vectors (indices are skipped and rebuilt), so equal folds produce
    /// identical bytes.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        serde_json::to_string(self)
            .expect("state serializes")
            .into_bytes()
    }

    /// Deserializes a state and rebuilds the store's skipped indices.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let mut state: KgState = serde_json::from_str(text).map_err(|e| e.to_string())?;
        state.store.rebuild_indices();
        Ok(state)
    }
}

/// Tuning knobs for a [`DurableStore`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Fsync after this many appends (0 = every append).
    pub sync_every: usize,
    /// Auto-snapshot after this many appends (0 = manual snapshots only).
    pub snapshot_every: u64,
    /// Reject adds that give an existing `(subject, relation)` a second
    /// live tail — keeps the MCQ builder's unique-gold invariant.
    pub functional: bool,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            sync_every: 32,
            snapshot_every: 0,
            functional: true,
        }
    }
}

/// Outcome of [`DurableStore::append`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppendOutcome {
    /// Logged and applied with this sequence number.
    Accepted(u64),
    /// Turned away by a validation rule; nothing was logged.
    Rejected(RejectedRecord),
}

/// Result of recovering a WAL directory.
pub struct Recovered {
    /// The folded state.
    pub state: KgState,
    /// Bytes of the log covered by applied records.
    pub valid_len: u64,
    /// True when a torn trailing record was dropped.
    pub dropped_tail: bool,
    /// Sequence number of the snapshot the fold started from (0 = none).
    pub snapshot_seq: u64,
    /// Highest sequence number present in the log file itself (0 for an
    /// empty/missing log). Can lag `snapshot_seq` when log bytes behind a
    /// snapshot were lost — every such record is covered by the snapshot.
    pub wal_last_seq: u64,
}

/// Lists snapshot files in `dir`, newest first, as `(seq, path)`.
fn snapshots_in(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut found = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return found;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(hex) = name
            .strip_prefix("snapshot-")
            .and_then(|s| s.strip_suffix(".json"))
        {
            if let Ok(seq) = u64::from_str_radix(hex, 16) {
                found.push((seq, entry.path()));
            }
        }
    }
    found.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
    found
}

/// Sequence number of the newest snapshot file in `dir` (0 when none).
/// Read-only; used by pipeline metrics to report snapshot age.
pub fn latest_snapshot_seq(dir: &Path) -> u64 {
    snapshots_in(dir).first().map(|(seq, _)| *seq).unwrap_or(0)
}

/// Loads and verifies one snapshot file (CRC header line + state JSON).
fn load_snapshot(path: &Path) -> Result<KgState, String> {
    let text = fs::read_to_string(path).map_err(|e| e.to_string())?;
    let (header, body) = text.split_once('\n').ok_or("snapshot missing header")?;
    let stored = u32::from_str_radix(header.trim(), 16).map_err(|_| "bad snapshot header")?;
    let actual = crc32(body.as_bytes());
    if stored != actual {
        return Err(format!(
            "snapshot checksum mismatch (stored {stored:08x}, actual {actual:08x})"
        ));
    }
    KgState::from_json(body)
}

/// Recovers the state of a WAL directory: latest valid snapshot + replay of
/// the log tail. Read-only — shared by the writer side
/// ([`DurableStore::open`]) and read-only consumers (the update pipeline).
pub fn recover(dir: impl AsRef<Path>) -> Result<Recovered, WalError> {
    let dir = dir.as_ref();
    let mut state = KgState::default();
    let mut snapshot_seq = 0;
    for (seq, path) in snapshots_in(dir) {
        match load_snapshot(&path) {
            Ok(s) => {
                debug_assert_eq!(s.seq, seq, "snapshot name/seq agree");
                state = s;
                snapshot_seq = seq;
                break;
            }
            Err(_) => continue, // corrupt snapshot: fall back to an older one
        }
    }
    let out = read_wal(dir.join(WAL_FILE), state.seq)?;
    for rec in &out.records {
        state.apply(&rec.delta);
        state.seq = rec.seq;
    }
    // The log may have been freshly created after a snapshot was taken; the
    // snapshot alone is then the whole state.
    Ok(Recovered {
        state,
        valid_len: out.valid_len,
        dropped_tail: out.dropped_tail,
        snapshot_seq,
        wal_last_seq: out.last_seq,
    })
}

/// The writer-side durable store: validated appends go to the WAL first,
/// then the in-memory state; snapshots bound replay time.
pub struct DurableStore {
    dir: PathBuf,
    state: KgState,
    writer: WalWriter,
    opts: StoreOptions,
    appends_since_snapshot: u64,
    last_snapshot_seq: u64,
}

impl DurableStore {
    /// Opens (creating if needed) the WAL directory, recovering any
    /// existing state and truncating a torn log tail.
    pub fn open(dir: impl AsRef<Path>, opts: StoreOptions) -> Result<Self, WalError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let rec = recover(&dir)?;
        // When the log ends before the newest snapshot (log bytes behind a
        // snapshot were lost), appending at `state.seq + 1` would leave a
        // file-level sequence gap that later scans reject as corruption.
        // Every record in such a log is covered by the snapshot, so start a
        // fresh log anchored at the snapshot's sequence instead.
        let valid_len = if rec.wal_last_seq < rec.snapshot_seq {
            0
        } else {
            rec.valid_len
        };
        let writer = WalWriter::open(
            dir.join(WAL_FILE),
            rec.state.seq,
            valid_len,
            opts.sync_every,
        )?;
        Ok(DurableStore {
            dir,
            state: rec.state,
            writer,
            opts,
            appends_since_snapshot: 0,
            last_snapshot_seq: rec.snapshot_seq,
        })
    }

    /// The WAL directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The materialized state.
    pub fn state(&self) -> &KgState {
        &self.state
    }

    /// Bytes written to the log.
    pub fn wal_bytes(&self) -> u64 {
        self.writer.bytes()
    }

    /// Sequence number of the newest snapshot (0 = none yet).
    pub fn last_snapshot_seq(&self) -> u64 {
        self.last_snapshot_seq
    }

    /// Validates `delta` against the live state. `Ok(())` means an append
    /// would be accepted right now.
    pub fn validate(&self, delta: &TripleDelta) -> Result<(), RejectedRecord> {
        let reject = |kind: RejectKind, detail: String| RejectedRecord {
            line: 0,
            col: 0,
            kind,
            detail,
        };
        if delta.has_empty_field() {
            return Err(reject(
                RejectKind::EmptyField,
                format!("empty field in `{delta}`"),
            ));
        }
        match delta.op {
            DeltaOp::Add => {
                if let Some(t) = self.state.resolve(delta) {
                    if self.state.is_live(&t) {
                        return Err(reject(
                            RejectKind::DuplicateOfLive,
                            format!("triple already live: `{delta}`"),
                        ));
                    }
                }
                if self.opts.functional {
                    if let (Some(h), Some(r)) = (
                        self.state.store.entity_by_name(&delta.subject),
                        self.state.store.relation_by_name(&delta.relation),
                    ) {
                        let conflicting = self.state.store.triples_of_head(h).iter().any(|t| {
                            t.relation == r
                                && self.state.store.entity_name(t.tail) != delta.object
                                && !self.state.tombstones.contains(t)
                        });
                        if conflicting {
                            return Err(reject(
                                RejectKind::FunctionalConflict,
                                format!(
                                    "`{}|{}` already has a different live tail",
                                    delta.subject, delta.relation
                                ),
                            ));
                        }
                    }
                }
            }
            DeltaOp::Retract => {
                let live = self
                    .state
                    .resolve(delta)
                    .is_some_and(|t| self.state.is_live(&t));
                if !live {
                    return Err(reject(
                        RejectKind::UnknownTriple,
                        format!("retract of a triple that is not live: `{delta}`"),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Validates, logs, applies, and (when due) snapshots one delta.
    pub fn append(&mut self, delta: &TripleDelta) -> Result<AppendOutcome, WalError> {
        if let Err(r) = self.validate(delta) {
            return Ok(AppendOutcome::Rejected(r));
        }
        let seq = self.writer.append(delta)?;
        self.state.apply(delta);
        self.state.seq = seq;
        self.appends_since_snapshot += 1;
        if self.opts.snapshot_every > 0 && self.appends_since_snapshot >= self.opts.snapshot_every {
            self.snapshot()?;
        }
        Ok(AppendOutcome::Accepted(seq))
    }

    /// Forces buffered records to disk.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.writer.sync()
    }

    /// Writes a checksummed snapshot of the current state and returns its
    /// path. The WAL itself is never truncated — replay after a snapshot
    /// just skips records the snapshot already covers.
    pub fn snapshot(&mut self) -> Result<PathBuf, WalError> {
        // A snapshot must never get ahead of the durable log: fsync first.
        self.writer.sync()?;
        let body = serde_json::to_string(&self.state).expect("state serializes");
        let path = self
            .dir
            .join(format!("snapshot-{:016x}.json", self.state.seq));
        let tmp = self.dir.join(".snapshot.tmp");
        fs::write(&tmp, format!("{:08x}\n{body}", crc32(body.as_bytes())))?;
        fs::rename(&tmp, &path)?;
        self.appends_since_snapshot = 0;
        self.last_snapshot_seq = self.state.seq;
        Ok(path)
    }

    /// Compacts the store: writes a checksummed snapshot of the current
    /// state, then swaps the log for a fresh empty one anchored at the
    /// snapshot's sequence. Recovery afterwards replays snapshot + empty
    /// log — the same state as replaying the full history — and the next
    /// append continues the sequence numbering unbroken. Crash-safe at
    /// every point: the snapshot lands durably (fsync + tmp-rename) before
    /// the log is touched, and a log that ends behind the newest snapshot
    /// is exactly what the fresh-log rule in [`DurableStore::open`]
    /// already recovers from.
    pub fn compact(&mut self) -> Result<PathBuf, WalError> {
        let path = self.snapshot()?;
        self.writer = WalWriter::open(
            self.dir.join(WAL_FILE),
            self.state.seq,
            0,
            self.opts.sync_every,
        )?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("infuserki_ds_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn add(s: &str, r: &str, o: &str) -> TripleDelta {
        TripleDelta::add(s, r, o)
    }

    #[test]
    fn append_apply_and_reopen_round_trip() {
        let dir = tmp("reopen");
        let mut ds = DurableStore::open(&dir, StoreOptions::default()).unwrap();
        assert!(matches!(
            ds.append(&add("aspirin", "treats", "headache")).unwrap(),
            AppendOutcome::Accepted(1)
        ));
        assert!(matches!(
            ds.append(&add("ibuprofen", "treats", "sprain")).unwrap(),
            AppendOutcome::Accepted(2)
        ));
        ds.sync().unwrap();
        let bytes = ds.state().canonical_bytes();
        drop(ds);
        let ds2 = DurableStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(ds2.state().canonical_bytes(), bytes);
        assert_eq!(ds2.state().live_len(), 2);
    }

    #[test]
    fn validation_rejects_without_logging() {
        let dir = tmp("validate");
        let mut ds = DurableStore::open(&dir, StoreOptions::default()).unwrap();
        ds.append(&add("a", "r", "b")).unwrap();
        // Exact duplicate of a live triple.
        match ds.append(&add("a", "r", "b")).unwrap() {
            AppendOutcome::Rejected(r) => assert_eq!(r.kind, RejectKind::DuplicateOfLive),
            other => panic!("{other:?}"),
        }
        // Functional conflict: same (s, r), different tail.
        match ds.append(&add("a", "r", "c")).unwrap() {
            AppendOutcome::Rejected(r) => assert_eq!(r.kind, RejectKind::FunctionalConflict),
            other => panic!("{other:?}"),
        }
        // Retract of something that was never added.
        match ds.append(&TripleDelta::retract("x", "r", "y")).unwrap() {
            AppendOutcome::Rejected(r) => assert_eq!(r.kind, RejectKind::UnknownTriple),
            other => panic!("{other:?}"),
        }
        // Empty field.
        match ds.append(&add("", "r", "y")).unwrap() {
            AppendOutcome::Rejected(r) => assert_eq!(r.kind, RejectKind::EmptyField),
            other => panic!("{other:?}"),
        }
        // Only the accepted record hit the log.
        assert_eq!(ds.state().seq, 1);
    }

    #[test]
    fn retract_then_readd_restores_liveness() {
        let dir = tmp("tombstone");
        let mut ds = DurableStore::open(&dir, StoreOptions::default()).unwrap();
        ds.append(&add("a", "r", "b")).unwrap();
        ds.append(&TripleDelta::retract("a", "r", "b")).unwrap();
        assert_eq!(ds.state().live_len(), 0);
        // After the retract, a *different* tail is no longer a conflict.
        assert!(matches!(
            ds.append(&add("a", "r", "c")).unwrap(),
            AppendOutcome::Accepted(_)
        ));
        // And the original can come back once its replacement is retracted.
        ds.append(&TripleDelta::retract("a", "r", "c")).unwrap();
        ds.append(&add("a", "r", "b")).unwrap();
        let live = ds.state().live_triples();
        assert_eq!(live.len(), 1);
        assert_eq!(ds.state().store.entity_name(live[0].tail), "b");
    }

    #[test]
    fn snapshot_plus_tail_equals_pure_replay() {
        let dir = tmp("snap");
        let mut ds = DurableStore::open(
            &dir,
            StoreOptions {
                snapshot_every: 3,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        for i in 0..8 {
            ds.append(&add(&format!("e{i}"), "rel", &format!("t{i}")))
                .unwrap();
        }
        ds.sync().unwrap();
        let bytes = ds.state().canonical_bytes();
        assert!(ds.last_snapshot_seq() >= 3, "auto-snapshot ran");
        drop(ds);
        // Recovery via snapshot + tail...
        let via_snapshot = recover(&dir).unwrap();
        assert!(via_snapshot.snapshot_seq >= 3);
        assert_eq!(via_snapshot.state.canonical_bytes(), bytes);
        // ...equals recovery from a pure replay (snapshots deleted).
        for (_, p) in snapshots_in(&dir) {
            std::fs::remove_file(p).unwrap();
        }
        let pure = recover(&dir).unwrap();
        assert_eq!(pure.snapshot_seq, 0);
        assert_eq!(pure.state.canonical_bytes(), bytes);
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_older_or_replay() {
        let dir = tmp("snapfall");
        let mut ds = DurableStore::open(&dir, StoreOptions::default()).unwrap();
        for i in 0..4 {
            ds.append(&add(&format!("e{i}"), "rel", "t")).unwrap();
        }
        let snap = ds.snapshot().unwrap();
        ds.append(&add("late", "rel", "t")).unwrap();
        ds.sync().unwrap();
        let bytes = ds.state().canonical_bytes();
        drop(ds);
        // Damage the snapshot body; recovery must ignore it and still
        // arrive at the same state from the full log.
        let text = std::fs::read_to_string(&snap).unwrap();
        std::fs::write(&snap, text.replace("e1", "xx")).unwrap();
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.snapshot_seq, 0, "corrupt snapshot skipped");
        assert_eq!(rec.state.canonical_bytes(), bytes);
    }
}
