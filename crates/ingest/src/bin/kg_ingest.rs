//! `kg_ingest` — command-line front end for the WAL-backed triple store.
//!
//! ```text
//! kg_ingest append   <wal-dir> <file...> [--format jsonl|csv|tsv|pipe]
//!                    [--sync-every N] [--snapshot-every N] [--non-functional]
//! kg_ingest tail     <wal-dir> <feed-file> [--format ...] [--poll-ms N]
//!                    [--idle-exit-ms N] [--sync-every N] [--snapshot-every N]
//! kg_ingest snapshot <wal-dir>
//! kg_ingest compact  <wal-dir>
//! kg_ingest verify   <wal-dir>
//! kg_ingest dump     <wal-dir>
//! ```
//!
//! `append` ingests whole files (format sniffed from the extension unless
//! `--format` pins it). `tail` watches a feed file and ingests new complete
//! lines as they are appended — a minimal watch mode for hooking the WAL to
//! an external producer; `--idle-exit-ms` stops after a quiet period (0 =
//! run forever), which is how tests and batch jobs use it. `verify` recovers
//! the directory read-only and reports what a restart would see. `compact`
//! rewrites a long WAL as snapshot + fresh empty log anchored at the
//! snapshot's sequence — recovery-equivalent, but replay no longer walks
//! the full history.

use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use infuserki_ingest::{
    parse_deltas, recover, AppendOutcome, DeltaFormat, DurableStore, StoreOptions,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: kg_ingest <append|tail|snapshot|compact|verify|dump> <wal-dir> [args...]\n\
         run with a subcommand for details (see crate docs)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(cmd), Some(dir)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let dir = PathBuf::from(dir);
    let rest = &args[2..];
    let result = match cmd.as_str() {
        "append" => cmd_append(&dir, rest),
        "tail" => cmd_tail(&dir, rest),
        "snapshot" => cmd_snapshot(&dir),
        "compact" => cmd_compact(&dir),
        "verify" => cmd_verify(&dir),
        "dump" => cmd_dump(&dir),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("kg_ingest {cmd}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Options shared by `append` and `tail`.
struct IngestArgs {
    format: Option<DeltaFormat>,
    opts: StoreOptions,
    poll_ms: u64,
    idle_exit_ms: u64,
    files: Vec<PathBuf>,
}

fn parse_ingest_args(rest: &[String]) -> Result<IngestArgs, String> {
    let mut out = IngestArgs {
        format: None,
        opts: StoreOptions::default(),
        poll_ms: 200,
        idle_exit_ms: 0,
        files: Vec::new(),
    };
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--format" => {
                let v = value("--format")?;
                out.format =
                    Some(DeltaFormat::parse(v).ok_or_else(|| format!("unknown format `{v}`"))?);
            }
            "--sync-every" => {
                out.opts.sync_every = value("--sync-every")?
                    .parse()
                    .map_err(|_| "--sync-every needs an integer".to_string())?;
            }
            "--snapshot-every" => {
                out.opts.snapshot_every = value("--snapshot-every")?
                    .parse()
                    .map_err(|_| "--snapshot-every needs an integer".to_string())?;
            }
            "--poll-ms" => {
                out.poll_ms = value("--poll-ms")?
                    .parse()
                    .map_err(|_| "--poll-ms needs an integer".to_string())?;
            }
            "--idle-exit-ms" => {
                out.idle_exit_ms = value("--idle-exit-ms")?
                    .parse()
                    .map_err(|_| "--idle-exit-ms needs an integer".to_string())?;
            }
            "--non-functional" => out.opts.functional = false,
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            other => out.files.push(PathBuf::from(other)),
        }
    }
    Ok(out)
}

/// Parses `text` and appends every accepted record, printing typed rejects
/// (parse-level and store-level) to stderr. Returns `(accepted, rejected)`.
fn ingest_text(
    ds: &mut DurableStore,
    text: &str,
    format: DeltaFormat,
    source: &str,
) -> Result<(u64, u64), String> {
    let batch = parse_deltas(text, format);
    let mut accepted = 0;
    let mut rejected = batch.rejects.len() as u64;
    for r in &batch.rejects {
        eprintln!("{source}: {r}");
    }
    for p in &batch.accepted {
        match ds.append(&p.delta).map_err(|e| e.to_string())? {
            AppendOutcome::Accepted(_) => accepted += 1,
            AppendOutcome::Rejected(mut r) => {
                r.line = p.line;
                rejected += 1;
                eprintln!("{source}: {r}");
            }
        }
    }
    Ok((accepted, rejected))
}

fn cmd_append(dir: &Path, rest: &[String]) -> Result<ExitCode, String> {
    let a = parse_ingest_args(rest)?;
    if a.files.is_empty() {
        return Err("append needs at least one input file".into());
    }
    let mut ds = DurableStore::open(dir, a.opts).map_err(|e| e.to_string())?;
    let (mut accepted, mut rejected) = (0, 0);
    for file in &a.files {
        let text =
            std::fs::read_to_string(file).map_err(|e| format!("read {}: {e}", file.display()))?;
        let format = a.format.unwrap_or_else(|| DeltaFormat::from_path(file));
        let (acc, rej) = ingest_text(&mut ds, &text, format, &file.display().to_string())?;
        accepted += acc;
        rejected += rej;
    }
    ds.sync().map_err(|e| e.to_string())?;
    println!(
        "accepted {accepted} rejected {rejected} seq {} live {}",
        ds.state().seq,
        ds.state().live_len()
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_tail(dir: &Path, rest: &[String]) -> Result<ExitCode, String> {
    let a = parse_ingest_args(rest)?;
    let [feed] = a.files.as_slice() else {
        return Err("tail needs exactly one feed file".into());
    };
    let format = a.format.unwrap_or_else(|| DeltaFormat::from_path(feed));
    let mut ds = DurableStore::open(dir, a.opts).map_err(|e| e.to_string())?;
    let mut offset = 0u64;
    let mut carry = String::new();
    let mut idle_ms = 0u64;
    let (mut accepted, mut rejected) = (0, 0);
    loop {
        let grown = match std::fs::File::open(feed) {
            Ok(mut f) => {
                let len = f.metadata().map_err(|e| e.to_string())?.len();
                if len < offset {
                    // The feed was truncated/rotated: start over from the top.
                    offset = 0;
                    carry.clear();
                }
                if len > offset {
                    f.seek(SeekFrom::Start(offset)).map_err(|e| e.to_string())?;
                    let mut buf = String::new();
                    f.read_to_string(&mut buf).map_err(|e| e.to_string())?;
                    offset = len;
                    carry.push_str(&buf);
                    true
                } else {
                    false
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => false,
            Err(e) => return Err(e.to_string()),
        };
        // Only complete lines are ingested; a partial trailing line waits
        // for the producer to finish it.
        if grown {
            let complete_up_to = carry.rfind('\n').map(|i| i + 1).unwrap_or(0);
            if complete_up_to > 0 {
                let chunk: String = carry.drain(..complete_up_to).collect();
                let (acc, rej) = ingest_text(&mut ds, &chunk, format, &feed.display().to_string())?;
                accepted += acc;
                rejected += rej;
                ds.sync().map_err(|e| e.to_string())?;
                println!(
                    "accepted {acc} rejected {rej} seq {} live {}",
                    ds.state().seq,
                    ds.state().live_len()
                );
            }
            idle_ms = 0;
        } else {
            idle_ms += a.poll_ms;
            if a.idle_exit_ms > 0 && idle_ms >= a.idle_exit_ms {
                break;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(a.poll_ms.max(1)));
    }
    println!(
        "done: accepted {accepted} rejected {rejected} seq {} live {}",
        ds.state().seq,
        ds.state().live_len()
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_snapshot(dir: &Path) -> Result<ExitCode, String> {
    let mut ds = DurableStore::open(dir, StoreOptions::default()).map_err(|e| e.to_string())?;
    let path = ds.snapshot().map_err(|e| e.to_string())?;
    println!("snapshot {} at seq {}", path.display(), ds.state().seq);
    Ok(ExitCode::SUCCESS)
}

fn cmd_compact(dir: &Path) -> Result<ExitCode, String> {
    let mut ds = DurableStore::open(dir, StoreOptions::default()).map_err(|e| e.to_string())?;
    let before = ds.wal_bytes();
    let path = ds.compact().map_err(|e| e.to_string())?;
    println!(
        "compacted {} log bytes into {} at seq {} ({} live)",
        before,
        path.display(),
        ds.state().seq,
        ds.state().live_len()
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_verify(dir: &Path) -> Result<ExitCode, String> {
    match recover(dir) {
        Ok(rec) => {
            println!(
                "ok: seq {} live {} tombstones {} snapshot_seq {} valid_bytes {}{}",
                rec.state.seq,
                rec.state.live_len(),
                rec.state.tombstones.len(),
                rec.snapshot_seq,
                rec.valid_len,
                if rec.dropped_tail {
                    " (torn tail would be truncated)"
                } else {
                    ""
                }
            );
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            eprintln!("corrupt: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn cmd_dump(dir: &Path) -> Result<ExitCode, String> {
    let rec = recover(dir).map_err(|e| e.to_string())?;
    let store = &rec.state.store;
    for t in rec.state.live_triples() {
        println!(
            "{}|{}|{}",
            store.entity_name(t.head),
            store.relation_name(t.relation),
            store.entity_name(t.tail)
        );
    }
    Ok(ExitCode::SUCCESS)
}
