//! The append-only write-ahead log of triplet deltas.
//!
//! One text record per line:
//!
//! ```text
//! <seq:016x> <crc:08x> <payload-json>
//! ```
//!
//! `seq` is a monotonically increasing record number starting at 1; `crc`
//! is the IEEE CRC-32 of `"<seq:016x> <payload-json>"`, so a record's
//! checksum covers both its position and its content. The payload is the
//! [`crate::delta::DeltaWire`] JSON object.
//!
//! Durability contract:
//!
//! * records are appended through a buffered writer and fsynced every
//!   `sync_every` records (and on [`WalWriter::sync`]), so a crash loses at
//!   most the unsynced suffix;
//! * only the *suffix* of the file can be torn: a record that is followed
//!   by another record must validate, and a bad checksum mid-file is
//!   reported as corruption rather than silently skipped;
//! * readers drop an invalid trailing record (a torn write) and report how
//!   many bytes they trusted, so a writer reopening the log truncates the
//!   torn tail before appending — replayed state is bitwise-equal to a
//!   never-crashed store over the surviving prefix.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::delta::{DeltaWire, TripleDelta};

/// File name of the log inside a WAL directory.
pub const WAL_FILE: &str = "wal.log";

/// IEEE CRC-32 (the ubiquitous reflected 0xEDB88320 polynomial), computed
/// bitwise — the log is line-oriented text, not a throughput-critical
/// binary format, and a table-free implementation keeps this dependency
/// free.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotonic sequence number (1-based).
    pub seq: u64,
    /// The logged delta.
    pub delta: TripleDelta,
}

/// WAL failures. `Corrupt` means the log is damaged *before* its tail —
/// recovery refuses to guess and surfaces the position instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// Underlying I/O failure.
    Io(String),
    /// A non-tail record failed validation.
    Corrupt {
        /// 1-based line of the bad record.
        line: usize,
        /// What was wrong with it.
        detail: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io: {e}"),
            WalError::Corrupt { line, detail } => write!(f, "wal corrupt at line {line}: {detail}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e.to_string())
    }
}

/// Encodes one record as its line (no trailing newline).
pub fn encode_record(seq: u64, delta: &TripleDelta) -> String {
    let payload = serde_json::to_string(&DeltaWire::from(delta)).expect("delta serializes");
    let body = format!("{seq:016x} {payload}");
    let crc = crc32(body.as_bytes());
    format!("{seq:016x} {crc:08x} {payload}")
}

/// Decodes one line. `Err` carries the reason.
pub fn decode_record(line: &str) -> Result<WalRecord, String> {
    let (seq_hex, rest) = line.split_once(' ').ok_or("missing seq field")?;
    let (crc_hex, payload) = rest.split_once(' ').ok_or("missing crc field")?;
    if seq_hex.len() != 16 {
        return Err(format!("seq field has width {}", seq_hex.len()));
    }
    let seq = u64::from_str_radix(seq_hex, 16).map_err(|_| "seq is not hex".to_string())?;
    let crc = u32::from_str_radix(crc_hex, 16).map_err(|_| "crc is not hex".to_string())?;
    let body = format!("{seq:016x} {payload}");
    let actual = crc32(body.as_bytes());
    if actual != crc {
        return Err(format!(
            "checksum mismatch (stored {crc:08x}, actual {actual:08x})"
        ));
    }
    let wire: DeltaWire =
        serde_json::from_str(payload).map_err(|e| format!("payload does not parse: {e}"))?;
    let delta = TripleDelta::try_from(wire)?;
    Ok(WalRecord { seq, delta })
}

/// Result of scanning a log file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Valid records with `seq > from_seq`, in order.
    pub records: Vec<WalRecord>,
    /// Highest sequence number seen (0 for an empty log).
    pub last_seq: u64,
    /// Bytes of the file covered by valid records (a reopening writer
    /// truncates to this length).
    pub valid_len: u64,
    /// True when a torn trailing record was dropped.
    pub dropped_tail: bool,
}

impl ReadOutcome {
    fn empty() -> Self {
        ReadOutcome {
            records: Vec::new(),
            last_seq: 0,
            valid_len: 0,
            dropped_tail: false,
        }
    }
}

/// Scans the log at `path`, returning records with `seq > from_seq`.
///
/// Sequence numbers must increase strictly by 1 from the first record seen;
/// a gap or regression is corruption. A missing file reads as empty. Only a
/// *final* invalid record is tolerated (dropped as a torn write).
pub fn read_wal(path: impl AsRef<Path>, from_seq: u64) -> Result<ReadOutcome, WalError> {
    let mut text = String::new();
    match File::open(&path) {
        Ok(mut f) => {
            f.read_to_string(&mut text)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ReadOutcome::empty()),
        Err(e) => return Err(e.into()),
    }
    scan_records(&text, from_seq, 0)
}

/// Scans `text` (the log content starting at byte `base_offset`, whose
/// first line is record line `base_line + 1`). Shared by full reads and the
/// incremental tailer.
fn scan_records(text: &str, from_seq: u64, base_line: usize) -> Result<ReadOutcome, WalError> {
    let mut out = ReadOutcome::empty();
    let mut expect: Option<u64> = None;
    let mut consumed = 0usize;
    let mut rest = text;
    let mut line_no = base_line;
    while let Some(nl) = rest.find('\n') {
        let line = &rest[..nl];
        line_no += 1;
        let after = &rest[nl + 1..];
        match decode_record(line) {
            Ok(rec) => {
                if let Some(e) = expect {
                    if rec.seq != e {
                        return Err(WalError::Corrupt {
                            line: line_no,
                            detail: format!("sequence gap: expected {e}, got {}", rec.seq),
                        });
                    }
                }
                expect = Some(rec.seq + 1);
                out.last_seq = rec.seq;
                if rec.seq > from_seq {
                    out.records.push(rec);
                }
                consumed += nl + 1;
                out.valid_len = consumed as u64;
            }
            Err(detail) => {
                // A bad record is only tolerable as the very tail of the
                // file: a crash can tear the suffix, nothing else.
                if after.trim_end().is_empty() {
                    out.dropped_tail = true;
                    return Ok(out);
                }
                return Err(WalError::Corrupt {
                    line: line_no,
                    detail,
                });
            }
        }
        rest = after;
    }
    if !rest.is_empty() {
        // Trailing bytes without a newline: an in-progress or torn append.
        out.dropped_tail = true;
    }
    Ok(out)
}

/// Appending writer with fsync batching.
pub struct WalWriter {
    out: BufWriter<File>,
    path: PathBuf,
    seq: u64,
    bytes: u64,
    unsynced: usize,
    sync_every: usize,
}

impl WalWriter {
    /// Opens (creating if needed) the log at `path` for appending.
    /// `resume_seq`/`valid_len` come from a prior [`read_wal`]; the file is
    /// truncated to `valid_len` first so a torn tail never pollutes new
    /// records. `sync_every` of 0 fsyncs on every append.
    pub fn open(
        path: impl AsRef<Path>,
        resume_seq: u64,
        valid_len: u64,
        sync_every: usize,
    ) -> Result<Self, WalError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&path)?;
        file.set_len(valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(WalWriter {
            out: BufWriter::new(file),
            path,
            seq: resume_seq,
            bytes: valid_len,
            unsynced: 0,
            sync_every,
        })
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one delta, returning its sequence number. The record is
    /// durable once [`sync`](Self::sync) runs (explicitly or via the
    /// batching threshold).
    pub fn append(&mut self, delta: &TripleDelta) -> Result<u64, WalError> {
        let seq = self.seq + 1;
        let line = encode_record(seq, delta);
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.seq = seq;
        self.bytes += line.len() as u64 + 1;
        self.unsynced += 1;
        if self.unsynced >= self.sync_every.max(1) {
            self.sync()?;
        }
        Ok(seq)
    }

    /// Flushes buffered records and fsyncs file data.
    pub fn sync(&mut self) -> Result<(), WalError> {
        if self.unsynced == 0 {
            return Ok(());
        }
        self.out.flush()?;
        self.out.get_ref().sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Last assigned sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Bytes written to the log (including any unsynced suffix).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Records appended since the last fsync.
    pub fn unsynced(&self) -> usize {
        self.unsynced
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        let _ = self.sync();
    }
}

/// Incremental, read-only log consumer: remembers its byte offset and next
/// expected sequence number, and surfaces new records as they are flushed
/// by a writer in this or another process. A torn/incomplete trailing
/// record is left in place for the next poll.
pub struct WalTailer {
    path: PathBuf,
    offset: u64,
    next_seq: u64,
    line: usize,
}

impl WalTailer {
    /// A tailer positioned after `(seq, offset)` — typically the values a
    /// recovery pass returned.
    pub fn new(path: impl AsRef<Path>, seq: u64, offset: u64, line: usize) -> Self {
        WalTailer {
            path: path.as_ref().to_path_buf(),
            offset,
            next_seq: seq + 1,
            line,
        }
    }

    /// Sequence number of the last consumed record.
    pub fn seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Reads any new complete records. Returns an empty vector when the
    /// file has not grown (or only a partial record has appeared).
    pub fn poll(&mut self) -> Result<Vec<WalRecord>, WalError> {
        let mut file = match File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let len = file.metadata()?.len();
        if len <= self.offset {
            return Ok(Vec::new());
        }
        file.seek(SeekFrom::Start(self.offset))?;
        let mut text = String::new();
        file.read_to_string(&mut text)?;
        let out = scan_records(&text, self.next_seq - 1, self.line)?;
        if let Some(first) = out.records.first() {
            if first.seq != self.next_seq {
                return Err(WalError::Corrupt {
                    line: self.line + 1,
                    detail: format!(
                        "tail resumes at seq {}, expected {}",
                        first.seq, self.next_seq
                    ),
                });
            }
        }
        self.offset += out.valid_len;
        self.line += out.records.len();
        if let Some(last) = out.records.last() {
            self.next_seq = last.seq + 1;
        }
        Ok(out.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("infuserki_wal_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d.join(WAL_FILE)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_round_trip() {
        let d = TripleDelta::add("a b", "rel", "c");
        let line = encode_record(7, &d);
        let rec = decode_record(&line).unwrap();
        assert_eq!(rec.seq, 7);
        assert_eq!(rec.delta, d);
    }

    #[test]
    fn tampered_record_fails_checksum() {
        let line = encode_record(1, &TripleDelta::add("a", "r", "b"));
        let bad = line.replace("\"a\"", "\"x\"");
        assert!(decode_record(&bad).unwrap_err().contains("checksum"));
    }

    #[test]
    fn write_then_read_all() {
        let p = tmp("rw");
        let mut w = WalWriter::open(&p, 0, 0, 8).unwrap();
        for i in 0..5 {
            w.append(&TripleDelta::add(format!("e{i}"), "r", "t"))
                .unwrap();
        }
        w.sync().unwrap();
        let out = read_wal(&p, 0).unwrap();
        assert_eq!(out.records.len(), 5);
        assert_eq!(out.last_seq, 5);
        assert!(!out.dropped_tail);
        assert_eq!(out.valid_len, std::fs::metadata(&p).unwrap().len());
        // Partial reads skip the prefix.
        assert_eq!(read_wal(&p, 3).unwrap().records.len(), 2);
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated_on_reopen() {
        let p = tmp("torn");
        let mut w = WalWriter::open(&p, 0, 0, 0).unwrap();
        for i in 0..3 {
            w.append(&TripleDelta::add(format!("e{i}"), "r", "t"))
                .unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let full = std::fs::metadata(&p).unwrap().len();
        // Tear the last record in half.
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() - 7]).unwrap();
        let out = read_wal(&p, 0).unwrap();
        assert_eq!(out.records.len(), 2);
        assert!(out.dropped_tail);
        // Reopen for appending: the torn suffix is cut, new record follows.
        let mut w = WalWriter::open(&p, out.last_seq, out.valid_len, 0).unwrap();
        w.append(&TripleDelta::add("e9", "r", "t")).unwrap();
        w.sync().unwrap();
        let out2 = read_wal(&p, 0).unwrap();
        assert_eq!(out2.records.len(), 3);
        assert_eq!(out2.last_seq, 3);
        assert!(!out2.dropped_tail);
        assert!(std::fs::metadata(&p).unwrap().len() < full + 10);
    }

    #[test]
    fn mid_file_corruption_is_an_error_not_a_skip() {
        let p = tmp("corrupt");
        let mut w = WalWriter::open(&p, 0, 0, 0).unwrap();
        for i in 0..3 {
            w.append(&TripleDelta::add(format!("e{i}"), "r", "t"))
                .unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let text = std::fs::read_to_string(&p).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        let tampered = lines[1].replace("e1", "xx");
        lines[1] = &tampered;
        std::fs::write(&p, format!("{}\n", lines.join("\n"))).unwrap();
        match read_wal(&p, 0) {
            Err(WalError::Corrupt { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn sequence_gap_is_corruption() {
        let p = tmp("gap");
        let l1 = encode_record(1, &TripleDelta::add("a", "r", "b"));
        let l3 = encode_record(3, &TripleDelta::add("c", "r", "d"));
        std::fs::write(&p, format!("{l1}\n{l3}\n")).unwrap();
        assert!(matches!(
            read_wal(&p, 0),
            Err(WalError::Corrupt { line: 2, .. })
        ));
    }

    #[test]
    fn tailer_sees_records_as_they_are_flushed() {
        let p = tmp("tail");
        let mut w = WalWriter::open(&p, 0, 0, 0).unwrap();
        let mut t = WalTailer::new(&p, 0, 0, 0);
        assert!(t.poll().unwrap().is_empty());
        w.append(&TripleDelta::add("a", "r", "b")).unwrap();
        w.sync().unwrap();
        let got = t.poll().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 1);
        assert!(t.poll().unwrap().is_empty());
        w.append(&TripleDelta::add("c", "r", "d")).unwrap();
        w.append(&TripleDelta::retract("a", "r", "b")).unwrap();
        w.sync().unwrap();
        let got = t.poll().unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].seq, 3);
        assert_eq!(t.seq(), 3);
    }

    #[test]
    fn tailer_waits_out_a_partial_trailing_record() {
        let p = tmp("tail_partial");
        let mut w = WalWriter::open(&p, 0, 0, 0).unwrap();
        w.append(&TripleDelta::add("a", "r", "b")).unwrap();
        w.sync().unwrap();
        drop(w);
        // Simulate a half-flushed second record (no newline).
        let half = encode_record(2, &TripleDelta::add("c", "r", "d"));
        let mut f = OpenOptions::new().append(true).open(&p).unwrap();
        f.write_all(&half.as_bytes()[..half.len() / 2]).unwrap();
        drop(f);
        let mut t = WalTailer::new(&p, 0, 0, 0);
        let got = t.poll().unwrap();
        assert_eq!(got.len(), 1, "complete record consumed");
        // Complete the record: tailer picks it up on the next poll.
        let mut f = OpenOptions::new().append(true).open(&p).unwrap();
        f.write_all(&half.as_bytes()[half.len() / 2..]).unwrap();
        f.write_all(b"\n").unwrap();
        drop(f);
        let got = t.poll().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 2);
    }
}
