//! The online knowledge-update pipeline: WAL tail → batch trigger →
//! detect/train (`core::incremental`) → bundle packaging → publish.
//!
//! One pipeline instance watches one WAL directory and owns a persistent
//! [`InfuserKiMethod`] that accumulates knowledge across rounds (the
//! paper's incremental-integration setting). Each round:
//!
//! 1. **Tail** — poll the WAL for new records and fold them into the
//!    materialized [`KgState`]. `add` deltas that the serving tokenizer can
//!    phrase (closed-vocabulary check) queue for training; the rest become
//!    typed rejects. WAL content that predates the pipeline is baseline
//!    world state, not training work.
//! 2. **Trigger** — a round starts when the queue passes `min_batch` or the
//!    oldest queued delta passes `max_age_ms`.
//! 3. **Train** — rebuild the vocab-filtered live store, run
//!    [`integrate_more`] (detection with the patched model, so facts from
//!    earlier rounds are skipped), and score held-out probes.
//! 4. **Package** — wrap the method in a [`KnowledgeBundle`] whose gate
//!    probes are the new facts' MCQs plus probes carried from earlier
//!    rounds, and persist the round's [`IncrementalReport`] next to it.
//! 5. **Publish** — hand the bundle to a [`BundlePublisher`]
//!    (load→stage→promote in a serving process). The promote-time NR gate
//!    is the safety valve: a refused bundle leaves the previous version
//!    serving and the pipeline moves on.

use std::path::{Path, PathBuf};
use std::time::Instant;

use infuserki_core::{
    integrate_more, EvalStamp, GateProbe, InfuserKiConfig, InfuserKiMethod, KnowledgeBundle,
    McqBank, TrainConfig,
};
use infuserki_kg::{Triple, TripleStore};
use infuserki_nn::{sampler, TransformerLm};
use infuserki_obs::Registry;
use infuserki_text::tokenizer::split_words;
use infuserki_text::{format_mcq_prompt, prompts, templates::TemplateSet, Mcq, Tokenizer};
use serde::{Deserialize, Serialize};

use crate::delta::{DeltaOp, RejectKind, TripleDelta};
use crate::metrics::IngestMetrics;
use crate::store::{latest_snapshot_seq, recover, KgState};
use crate::wal::{WalError, WalTailer, WAL_FILE};

/// How a published bundle landed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishReport {
    /// The version the serving registry assigned.
    pub version: u32,
}

/// Why a publish did not land.
#[derive(Debug, Clone, PartialEq)]
pub enum PublishError {
    /// The serving side's promote-time NR gate refused the bundle; the
    /// previous version keeps serving.
    GateRefused {
        /// Probes scored.
        probes: u32,
        /// Correct under the candidate.
        staged_correct: u32,
        /// Correct under the active version.
        active_correct: u32,
    },
    /// Any other failure (I/O, incompatible bundle, dead server).
    Other(String),
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::GateRefused {
                probes,
                staged_correct,
                active_correct,
            } => write!(
                f,
                "NR gate refused bundle: {staged_correct}/{probes} vs {active_correct}/{probes} active"
            ),
            PublishError::Other(e) => write!(f, "{e}"),
        }
    }
}

/// Where finished bundles go. The serving integration implements this for
/// its control-plane client (load→stage→promote); tests implement it
/// in-process.
pub trait BundlePublisher {
    /// Publishes the bundle file at `path` and returns the assigned
    /// version.
    fn publish(&self, path: &Path) -> Result<PublishReport, PublishError>;
}

/// Pipeline tuning. Serializable so `serve --watch-config` can load it
/// from a JSON file; generate one with
/// `serde_json::to_string(&PipelineConfig::default())` and edit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Queue size that triggers a round.
    pub min_batch: usize,
    /// Age (ms) of the oldest queued delta that triggers a round of any
    /// size.
    pub max_age_ms: u64,
    /// Poll cadence (ms) for the watcher thread driving [`run_once`].
    pub poll_ms: u64,
    /// Cap on gate probes per bundle (carried probes first, then this
    /// round's new-fact probes).
    pub max_gate_probes: usize,
    /// How many probes to carry forward to later rounds' bundles (the NR
    /// gate's memory of earlier knowledge).
    pub carry_probes: usize,
    /// Directory bundles and reports are written to (a path, stored as a
    /// string so the config serializes through the workspace serde shim).
    pub bundle_dir: String,
    /// Bundle name prefix (`{prefix}-r{round}`).
    pub name_prefix: String,
    /// Relation-head capacity of the method (new relations beyond this are
    /// rejected as [`RejectKind::RelationCapacity`]).
    pub max_relations: usize,
    /// Method architecture; `None` uses [`InfuserKiConfig::for_model`].
    pub method: Option<InfuserKiConfig>,
    /// Per-round training config (`seed` is xored with the round number).
    pub train: TrainConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            min_batch: 4,
            max_age_ms: 10_000,
            poll_ms: 200,
            max_gate_probes: 32,
            carry_probes: 16,
            bundle_dir: "bundles".to_string(),
            name_prefix: "ingest".to_string(),
            max_relations: 32,
            method: None,
            train: TrainConfig::default(),
        }
    }
}

/// What one [`UpdatePipeline::run_once`] call did.
#[derive(Debug, Clone, PartialEq)]
pub enum RoundOutcome {
    /// No new records and nothing queued.
    Idle,
    /// Deltas are queued but the trigger has not fired.
    Waiting {
        /// Queued delta count.
        pending: usize,
    },
    /// A bundle was built and promoted.
    Published {
        /// Serving-side version.
        version: u32,
        /// Bundle name.
        name: String,
        /// Bundle artifact path.
        path: PathBuf,
        /// Facts the round actually trained (unknown under the patched
        /// model).
        newly_integrated: usize,
    },
    /// A bundle was built but the NR gate refused it; the batch is dropped
    /// and the previous version keeps serving.
    Refused {
        /// Probes scored by the gate.
        probes: u32,
        /// Correct under the candidate.
        staged_correct: u32,
        /// Correct under the active version.
        active_correct: u32,
    },
}

/// A pipeline failure (distinct from a gate refusal, which is an outcome).
#[derive(Debug)]
pub enum PipelineError {
    /// WAL read failure or corruption.
    Wal(WalError),
    /// Bundle/report artifact could not be written.
    Artifact(String),
    /// The publisher failed for a non-gate reason.
    Publish(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Wal(e) => write!(f, "wal: {e}"),
            PipelineError::Artifact(e) => write!(f, "artifact: {e}"),
            PipelineError::Publish(e) => write!(f, "publish: {e}"),
        }
    }
}

impl From<WalError> for PipelineError {
    fn from(e: WalError) -> Self {
        PipelineError::Wal(e)
    }
}

/// The online update pipeline. See the module docs for the round shape.
pub struct UpdatePipeline<P: BundlePublisher> {
    base: TransformerLm,
    tokenizer: Tokenizer,
    method: InfuserKiMethod,
    cfg: PipelineConfig,
    publisher: P,
    metrics: IngestMetrics,
    wal_dir: PathBuf,
    state: KgState,
    tailer: WalTailer,
    pending: Vec<TripleDelta>,
    pending_since: Option<Instant>,
    carried: Vec<GateProbe>,
    round: u64,
}

impl<P: BundlePublisher> UpdatePipeline<P> {
    /// Opens the pipeline over `wal_dir`, recovering the current state.
    /// Existing WAL content becomes the baseline world; only records
    /// appended afterwards queue for training. `registry` receives the
    /// `ingest.*` metrics.
    pub fn new(
        base: TransformerLm,
        tokenizer: Tokenizer,
        wal_dir: impl AsRef<Path>,
        cfg: PipelineConfig,
        publisher: P,
        registry: &Registry,
    ) -> Result<Self, WalError> {
        let wal_dir = wal_dir.as_ref().to_path_buf();
        let rec = recover(&wal_dir)?;
        let tailer = WalTailer::new(
            wal_dir.join(WAL_FILE),
            rec.state.seq,
            rec.valid_len,
            rec.state.seq as usize,
        );
        let method_cfg = cfg
            .method
            .clone()
            .unwrap_or_else(|| InfuserKiConfig::for_model(base.n_layers()));
        let method = InfuserKiMethod::new(method_cfg, &base, cfg.max_relations);
        let metrics = IngestMetrics::new(registry);
        metrics.wal_bytes.set(rec.valid_len as i64);
        Ok(UpdatePipeline {
            base,
            tokenizer,
            method,
            cfg,
            publisher,
            metrics,
            wal_dir,
            state: rec.state,
            tailer,
            pending: Vec::new(),
            pending_since: None,
            carried: Vec::new(),
            round: 0,
        })
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Mutable configuration access (an operations hook: retune triggers or
    /// probe budgets between rounds).
    pub fn config_mut(&mut self) -> &mut PipelineConfig {
        &mut self.cfg
    }

    /// The materialized WAL state as of the last poll.
    pub fn state(&self) -> &KgState {
        &self.state
    }

    /// Deltas queued for the next round.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Probes carried from earlier rounds (earlier knowledge the NR gate
    /// re-checks on every later bundle).
    pub fn carried_probes(&self) -> &[GateProbe] {
        &self.carried
    }

    /// Replaces the accumulated method with a fresh (untrained) one —
    /// an operations/testing hook for "start knowledge over without
    /// restarting ingestion".
    pub fn reset_method(&mut self) {
        let method_cfg = self
            .cfg
            .method
            .clone()
            .unwrap_or_else(|| InfuserKiConfig::for_model(self.base.n_layers()));
        self.method = InfuserKiMethod::new(method_cfg, &self.base, self.cfg.max_relations);
    }

    /// One pipeline step: poll the WAL, queue work, and run a round if the
    /// trigger fires. Non-blocking (call it on a cadence of
    /// [`PipelineConfig::poll_ms`]).
    pub fn run_once(&mut self) -> Result<RoundOutcome, PipelineError> {
        self.poll()?;
        if self.pending.is_empty() {
            return Ok(RoundOutcome::Idle);
        }
        let aged = self
            .pending_since
            .is_some_and(|t| t.elapsed().as_millis() as u64 >= self.cfg.max_age_ms);
        if self.pending.len() < self.cfg.min_batch && !aged {
            return Ok(RoundOutcome::Waiting {
                pending: self.pending.len(),
            });
        }
        self.run_round()
    }

    /// Polls the WAL and folds new records into the state and the pending
    /// queue. Returns whether anything new arrived.
    fn poll(&mut self) -> Result<bool, WalError> {
        let started = Instant::now();
        let records = self.tailer.poll()?;
        if records.is_empty() {
            return Ok(false);
        }
        self.metrics.records_in.add(records.len() as u64);
        for rec in &records {
            self.state.apply(&rec.delta);
            self.state.seq = rec.seq;
            self.metrics.records_accepted.inc();
            match rec.delta.op {
                DeltaOp::Add => match self.admit(&rec.delta) {
                    Ok(()) => {
                        if self.pending.is_empty() {
                            self.pending_since = Some(Instant::now());
                        }
                        self.pending.push(rec.delta.clone());
                    }
                    Err(kind) => self.metrics.reject(kind),
                },
                // Retracts update the world (and future distractors) but
                // are not trainable facts themselves.
                DeltaOp::Retract => {}
            }
        }
        self.metrics.apply_ms.record_duration(started.elapsed());
        self.metrics.pending_deltas.set(self.pending.len() as i64);
        self.metrics.wal_bytes.set(self.tailer_bytes() as i64);
        self.metrics
            .snapshot_age_records
            .set((self.state.seq - latest_snapshot_seq(&self.wal_dir).min(self.state.seq)) as i64);
        Ok(true)
    }

    fn tailer_bytes(&self) -> u64 {
        std::fs::metadata(self.wal_dir.join(WAL_FILE))
            .map(|m| m.len())
            .unwrap_or(0)
    }

    /// Checks a freshly applied `add` for trainability: the serving
    /// tokenizer must be able to phrase questions about it (closed
    /// vocabulary) and its relation must fit the method's RC-head capacity.
    fn admit(&self, delta: &TripleDelta) -> Result<(), RejectKind> {
        if !self.delta_in_vocab(delta) {
            return Err(RejectKind::OutOfVocabulary);
        }
        let known_relation = self
            .state
            .store
            .relation_names()
            .take(self.cfg.max_relations)
            .any(|r| r == delta.relation);
        if !known_relation {
            return Err(RejectKind::RelationCapacity);
        }
        Ok(())
    }

    fn delta_in_vocab(&self, delta: &TripleDelta) -> bool {
        self.text_in_vocab(&delta.subject)
            && self.text_in_vocab(&delta.object)
            && TemplateSet::vocabulary_lines(&delta.relation)
                .iter()
                .all(|line| {
                    split_words(line)
                        .iter()
                        .all(|w| w == "x" || w == "y" || self.tokenizer.word_id(w).is_some())
                })
    }

    fn text_in_vocab(&self, text: &str) -> bool {
        let words = split_words(text);
        !words.is_empty() && words.iter().all(|w| self.tokenizer.word_id(w).is_some())
    }

    /// Rebuilds the vocab-filtered live training store (fresh interning in
    /// WAL order, so ids are deterministic given the same live set) and
    /// maps the pending deltas into it.
    fn live_training_store(&self) -> (TripleStore, Vec<Triple>) {
        let mut live = TripleStore::default();
        for t in self.state.live_triples() {
            let s = self.state.store.entity_name(t.head);
            let r = self.state.store.relation_name(t.relation);
            let o = self.state.store.entity_name(t.tail);
            let in_vocab = self.text_in_vocab(s)
                && self.text_in_vocab(o)
                && TemplateSet::vocabulary_lines(r).iter().all(|line| {
                    split_words(line)
                        .iter()
                        .all(|w| w == "x" || w == "y" || self.tokenizer.word_id(w).is_some())
                });
            if !in_vocab {
                continue;
            }
            let h = live.intern_entity(s);
            let rel = live.intern_relation(r);
            let tl = live.intern_entity(o);
            live.insert(Triple::new(h, rel, tl));
        }
        let mut new_triples = Vec::new();
        for d in &self.pending {
            let Some(t) = (|| {
                Some(Triple::new(
                    live.entity_by_name(&d.subject)?,
                    live.relation_by_name(&d.relation)?,
                    live.entity_by_name(&d.object)?,
                ))
            })() else {
                continue; // retracted (or otherwise gone) while queued
            };
            if live.contains(&t) && !new_triples.contains(&t) {
                new_triples.push(t);
            }
        }
        (live, new_triples)
    }

    /// Runs one full round: train, package, publish.
    fn run_round(&mut self) -> Result<RoundOutcome, PipelineError> {
        self.round += 1;
        self.metrics.rounds.inc();
        let (live, new_triples) = self.live_training_store();
        if new_triples.is_empty() {
            // Everything queued was retracted before the round fired.
            self.clear_pending();
            return Ok(RoundOutcome::Idle);
        }
        let tc = TrainConfig {
            seed: self.cfg.train.seed ^ self.round,
            ..self.cfg.train.clone()
        };

        let started = Instant::now();
        let report = integrate_more(
            &self.base,
            &mut self.method,
            &live,
            &new_triples,
            &self.tokenizer,
            &tc,
        );
        self.metrics.integrate_ms.record_duration(started.elapsed());

        let started = Instant::now();
        // The same bank `integrate_more` trained on (same seed derivation),
        // so probes quiz exactly the phrasing that was taught.
        let bank = McqBank::build(&live, &new_triples, tc.seed ^ 0x1c2e);
        let new_probes: Vec<GateProbe> = bank
            .template(0)
            .iter()
            .map(|m| probe_from_mcq(m, &self.tokenizer))
            .collect();
        let stamp = self.stamp(&new_probes);
        let mut gate_probes = self.carried.clone();
        gate_probes.extend(new_probes.iter().cloned());
        gate_probes.truncate(self.cfg.max_gate_probes);

        let name = format!("{}-r{}", self.cfg.name_prefix, self.round);
        let bundle = KnowledgeBundle::new(
            &name,
            self.method.clone(),
            &self.base,
            Some(stamp),
            gate_probes,
        )
        .map_err(PipelineError::Artifact)?;
        let bundle_dir = Path::new(&self.cfg.bundle_dir);
        let path = bundle_dir.join(format!("{name}.json"));
        bundle.save(&path).map_err(PipelineError::Artifact)?;
        // Satellite artifact: the round's IncrementalReport next to the
        // bundle, for offline NR/RR bookkeeping.
        report
            .save(bundle_dir.join(format!("{name}.report.json")))
            .map_err(PipelineError::Artifact)?;
        self.metrics.package_ms.record_duration(started.elapsed());

        let started = Instant::now();
        let outcome = self.publisher.publish(&path);
        self.metrics.publish_ms.record_duration(started.elapsed());
        match outcome {
            Ok(pub_report) => {
                self.metrics.bundles_published.inc();
                // The new facts join the carried probe pool so later rounds
                // are gated on them too (newest first, bounded).
                let mut carried = new_probes;
                carried.append(&mut self.carried);
                carried.truncate(self.cfg.carry_probes);
                self.carried = carried;
                self.clear_pending();
                Ok(RoundOutcome::Published {
                    version: pub_report.version,
                    name,
                    path,
                    newly_integrated: report.newly_integrated,
                })
            }
            Err(PublishError::GateRefused {
                probes,
                staged_correct,
                active_correct,
            }) => {
                self.metrics.bundles_refused.inc();
                // Safety valve: drop the regressing batch, keep serving the
                // previous version, and keep ingesting.
                self.clear_pending();
                Ok(RoundOutcome::Refused {
                    probes,
                    staged_correct,
                    active_correct,
                })
            }
            Err(PublishError::Other(e)) => Err(PipelineError::Publish(e)),
        }
    }

    fn clear_pending(&mut self) {
        self.pending.clear();
        self.pending_since = None;
        self.metrics.pending_deltas.set(0);
    }

    /// Scores the method on carried probes (NR: earlier knowledge retained)
    /// and this round's new probes (RR: new knowledge acquired).
    fn stamp(&self, new_probes: &[GateProbe]) -> EvalStamp {
        let hook = self.method.hook();
        let frac = |probes: &[GateProbe]| -> f32 {
            if probes.is_empty() {
                return 1.0;
            }
            let correct = probes
                .iter()
                .filter(|p| {
                    let scores = sampler::score_options(&self.base, &hook, &p.prompt, &p.options);
                    let lens: Vec<usize> = p.options.iter().map(Vec::len).collect();
                    sampler::argmax(&sampler::option_probabilities(&scores, &lens)) == p.correct
                })
                .count();
            correct as f32 / probes.len() as f32
        };
        EvalStamp {
            nr: frac(&self.carried),
            rr: frac(new_probes),
        }
    }
}

/// Encodes one MCQ as a [`GateProbe`] the serving NR gate can score: the
/// standard MCQ prompt, with each option phrased as the model is trained to
/// answer (`"(x) option text"`).
pub fn probe_from_mcq(mcq: &Mcq, tokenizer: &Tokenizer) -> GateProbe {
    let prompt = tokenizer.encode_strict(&format_mcq_prompt(mcq));
    let options = mcq
        .options
        .iter()
        .enumerate()
        .map(|(i, o)| tokenizer.encode_strict(&format!("{} {o}", prompts::option_token(i))))
        .collect();
    GateProbe {
        prompt,
        options,
        correct: mcq.correct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{DurableStore, StoreOptions};
    use infuserki_core::IncrementalReport;
    use infuserki_kg::{synth_umls, UmlsConfig};
    use infuserki_nn::ModelConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// Publisher double that accepts everything and counts versions.
    struct CountingPublisher(AtomicU32);

    impl BundlePublisher for CountingPublisher {
        fn publish(&self, path: &Path) -> Result<PublishReport, PublishError> {
            assert!(path.exists(), "bundle file must exist before publish");
            Ok(PublishReport {
                version: self.0.fetch_add(1, Ordering::SeqCst) + 1,
            })
        }
    }

    /// Publisher double that always refuses at the gate.
    struct RefusingPublisher;

    impl BundlePublisher for RefusingPublisher {
        fn publish(&self, _path: &Path) -> Result<PublishReport, PublishError> {
            Err(PublishError::GateRefused {
                probes: 4,
                staged_correct: 1,
                active_correct: 3,
            })
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("infuserki_pipe_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn tiny_world() -> (TransformerLm, Tokenizer, TripleStore) {
        let store = synth_umls(&UmlsConfig::with_triplets(40, 19));
        let mut lines: Vec<String> = store.entity_names().map(str::to_string).collect();
        for r in store.relation_names() {
            lines.extend(TemplateSet::vocabulary_lines(r));
        }
        lines.extend(prompts::vocabulary_lines());
        let tok = Tokenizer::build(lines.iter().map(String::as_str));
        let mut rng = ChaCha8Rng::seed_from_u64(91);
        let base = TransformerLm::new(
            ModelConfig {
                vocab_size: tok.vocab_size(),
                max_seq: 96,
                ..ModelConfig::tiny(0)
            },
            &mut rng,
        );
        (base, tok, store)
    }

    fn quick_cfg(dir: &Path) -> PipelineConfig {
        let mut method = InfuserKiConfig::for_model(2);
        method.bottleneck = 4;
        method.infuser_hidden = 4;
        method.rc_dim = 8;
        PipelineConfig {
            min_batch: 2,
            max_age_ms: 60_000,
            max_relations: 24,
            method: Some(method),
            bundle_dir: dir.join("bundles").display().to_string(),
            train: TrainConfig {
                epochs_infuser: 1,
                epochs_qa: 1,
                epochs_rc: 1,
                lr: 1e-3,
                lr_infuser: 1e-2,
                batch: 4,
                seed: 11,
            },
            ..PipelineConfig::default()
        }
    }

    /// Seeds a WAL with the baseline world and returns the durable store.
    fn seed_wal(dir: &Path, store: &TripleStore) -> DurableStore {
        let mut ds = DurableStore::open(dir, StoreOptions::default()).unwrap();
        for t in store.triples() {
            let d = TripleDelta::add(
                store.entity_name(t.head),
                store.relation_name(t.relation),
                store.entity_name(t.tail),
            );
            ds.append(&d).unwrap();
        }
        ds.sync().unwrap();
        ds
    }

    #[test]
    fn baseline_wal_is_not_training_work() {
        let dir = tmp("baseline");
        let (base, tok, world) = tiny_world();
        let mut ds = seed_wal(&dir, &world);
        let reg = Registry::new();
        let mut pipe = UpdatePipeline::new(
            base,
            tok,
            &dir,
            quick_cfg(&dir),
            CountingPublisher(AtomicU32::new(0)),
            &reg,
        )
        .unwrap();
        // Everything logged before startup is baseline: idle, no pending.
        assert_eq!(pipe.run_once().unwrap(), RoundOutcome::Idle);
        assert_eq!(pipe.pending(), 0);
        assert_eq!(pipe.state().live_len(), world.len());
        // A post-startup append queues (below min_batch → waiting).
        let names: Vec<&str> = world.entity_names().collect();
        let rel = world.relation_name(world.triples()[0].relation);
        let mut appended = 0;
        'outer: for (i, &s) in names.iter().enumerate() {
            for &o in names.iter().skip(i + 1) {
                if appended == 1 {
                    break 'outer;
                }
                if let crate::store::AppendOutcome::Accepted(_) =
                    ds.append(&TripleDelta::add(s, rel, o)).unwrap()
                {
                    appended += 1;
                }
            }
        }
        assert_eq!(appended, 1);
        ds.sync().unwrap();
        assert_eq!(
            pipe.run_once().unwrap(),
            RoundOutcome::Waiting { pending: 1 }
        );
    }

    #[test]
    fn round_publishes_bundle_with_report_and_probes() {
        let dir = tmp("publish");
        let (base, tok, world) = tiny_world();
        let mut ds = seed_wal(&dir, &world);
        let reg = Registry::new();
        let mut pipe = UpdatePipeline::new(
            base.clone(),
            tok.clone(),
            &dir,
            quick_cfg(&dir),
            CountingPublisher(AtomicU32::new(0)),
            &reg,
        )
        .unwrap();
        assert_eq!(pipe.run_once().unwrap(), RoundOutcome::Idle);
        // Two brand-new facts re-using known entities/relations.
        let names: Vec<&str> = world.entity_names().collect();
        let rel = world.relation_name(world.triples()[0].relation);
        let mut appended = 0;
        'outer: for (i, &s) in names.iter().enumerate() {
            for &o in names.iter().skip(i + 1) {
                if appended == 2 {
                    break 'outer;
                }
                if let crate::store::AppendOutcome::Accepted(_) =
                    ds.append(&TripleDelta::add(s, rel, o)).unwrap()
                {
                    appended += 1;
                }
            }
        }
        assert_eq!(appended, 2, "could not find two novel facts to append");
        ds.sync().unwrap();
        let outcome = pipe.run_once().unwrap();
        let RoundOutcome::Published {
            version,
            name,
            path,
            ..
        } = outcome
        else {
            panic!("expected publish, got {outcome:?}");
        };
        assert_eq!(version, 1);
        // Bundle artifact exists, has probes, and carries a stamp.
        let bundle = KnowledgeBundle::load(&path).unwrap();
        assert_eq!(bundle.name, name);
        assert!(!bundle.gate_probes.is_empty());
        assert!(bundle.stamp.is_some());
        bundle.verify(&base).expect("bundle verifies against base");
        // The report satellite sits next to it.
        let report_path = path.with_file_name(format!("{name}.report.json"));
        let report = IncrementalReport::load(&report_path).unwrap();
        assert_eq!(report.presented, 2);
        // Probes are carried for later rounds.
        assert!(!pipe.carried_probes().is_empty());
        assert_eq!(pipe.pending(), 0);
        // Metrics flowed.
        let snap = reg.snapshot();
        assert_eq!(
            snap.get("ingest.bundles_published"),
            Some(&infuserki_obs::MetricValue::Counter(1))
        );
    }

    #[test]
    fn gate_refusal_drops_batch_and_keeps_ingesting() {
        let dir = tmp("refuse");
        let (base, tok, world) = tiny_world();
        let mut ds = seed_wal(&dir, &world);
        let reg = Registry::new();
        let mut pipe =
            UpdatePipeline::new(base, tok, &dir, quick_cfg(&dir), RefusingPublisher, &reg).unwrap();
        assert_eq!(pipe.run_once().unwrap(), RoundOutcome::Idle);
        let names: Vec<&str> = world.entity_names().collect();
        let rel = world.relation_name(world.triples()[0].relation);
        let mut appended = 0;
        'outer: for (i, &s) in names.iter().enumerate() {
            for &o in names.iter().skip(i + 1) {
                if appended == 2 {
                    break 'outer;
                }
                if let crate::store::AppendOutcome::Accepted(_) =
                    ds.append(&TripleDelta::add(s, rel, o)).unwrap()
                {
                    appended += 1;
                }
            }
        }
        ds.sync().unwrap();
        let outcome = pipe.run_once().unwrap();
        assert!(
            matches!(
                outcome,
                RoundOutcome::Refused {
                    staged_correct: 1,
                    ..
                }
            ),
            "{outcome:?}"
        );
        // Batch dropped, no probes carried, metrics show the refusal.
        assert_eq!(pipe.pending(), 0);
        assert!(pipe.carried_probes().is_empty());
        let snap = reg.snapshot();
        assert_eq!(
            snap.get("ingest.bundles_refused"),
            Some(&infuserki_obs::MetricValue::Counter(1))
        );
        assert_eq!(
            snap.get("ingest.bundles_published"),
            Some(&infuserki_obs::MetricValue::Counter(0))
        );
    }

    #[test]
    fn oov_adds_are_rejected_not_queued() {
        let dir = tmp("oov");
        let (base, tok, world) = tiny_world();
        let mut ds = seed_wal(&dir, &world);
        let reg = Registry::new();
        let mut pipe = UpdatePipeline::new(
            base,
            tok,
            &dir,
            quick_cfg(&dir),
            CountingPublisher(AtomicU32::new(0)),
            &reg,
        )
        .unwrap();
        pipe.run_once().unwrap();
        let rel = world.relation_name(world.triples()[0].relation);
        ds.append(&TripleDelta::add("zzzunseen entity", rel, "other zzzthing"))
            .unwrap();
        ds.sync().unwrap();
        assert_eq!(pipe.run_once().unwrap(), RoundOutcome::Idle);
        assert_eq!(pipe.pending(), 0);
        let snap = reg.snapshot();
        assert_eq!(
            snap.get("ingest.rejected.out_of_vocabulary"),
            Some(&infuserki_obs::MetricValue::Counter(1))
        );
    }
}
