//! Typed triplet deltas and the per-record reject taxonomy.
//!
//! A delta is the unit the whole streaming path moves: parsers emit them,
//! the WAL logs them, the materialized [`crate::store::KgState`] applies
//! them, and the update pipeline batches them into training rounds. Deltas
//! carry entity/relation *names* (not interned ids) — names are the stable
//! identity across processes and restarts; ids depend on interning order.

use serde::{Deserialize, Serialize};

/// What a delta does to the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeltaOp {
    /// Assert the triple.
    Add,
    /// Tombstone a previously asserted triple.
    Retract,
}

impl DeltaOp {
    /// Wire name (`"add"` / `"retract"`).
    pub fn as_str(self) -> &'static str {
        match self {
            DeltaOp::Add => "add",
            DeltaOp::Retract => "retract",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "add" | "+" => Some(DeltaOp::Add),
            "retract" | "del" | "-" => Some(DeltaOp::Retract),
            _ => None,
        }
    }
}

/// One triplet delta, by name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TripleDelta {
    /// Add or retract.
    pub op: DeltaOp,
    /// Subject (head entity) name.
    pub subject: String,
    /// Relation name.
    pub relation: String,
    /// Object (tail entity) name.
    pub object: String,
}

impl TripleDelta {
    /// An `add` delta.
    pub fn add(s: impl Into<String>, r: impl Into<String>, o: impl Into<String>) -> Self {
        TripleDelta {
            op: DeltaOp::Add,
            subject: s.into(),
            relation: r.into(),
            object: o.into(),
        }
    }

    /// A `retract` delta.
    pub fn retract(s: impl Into<String>, r: impl Into<String>, o: impl Into<String>) -> Self {
        TripleDelta {
            op: DeltaOp::Retract,
            subject: s.into(),
            relation: r.into(),
            object: o.into(),
        }
    }

    /// True when any field is empty after trimming.
    pub fn has_empty_field(&self) -> bool {
        self.subject.trim().is_empty()
            || self.relation.trim().is_empty()
            || self.object.trim().is_empty()
    }
}

impl std::fmt::Display for TripleDelta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}|{}|{}",
            self.op.as_str(),
            self.subject,
            self.relation,
            self.object
        )
    }
}

/// The JSON shape a delta takes inside WAL records and JSONL input.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeltaWire {
    /// `"add"` or `"retract"`.
    pub op: String,
    /// Subject name.
    pub s: String,
    /// Relation name.
    pub r: String,
    /// Object name.
    pub o: String,
}

impl From<&TripleDelta> for DeltaWire {
    fn from(d: &TripleDelta) -> Self {
        DeltaWire {
            op: d.op.as_str().to_string(),
            s: d.subject.clone(),
            r: d.relation.clone(),
            o: d.object.clone(),
        }
    }
}

impl TryFrom<DeltaWire> for TripleDelta {
    type Error = String;

    fn try_from(w: DeltaWire) -> Result<Self, String> {
        let op = DeltaOp::parse(&w.op).ok_or_else(|| format!("unknown op `{}`", w.op))?;
        Ok(TripleDelta {
            op,
            subject: w.s,
            relation: w.r,
            object: w.o,
        })
    }
}

/// Why a record was turned away, as a closed taxonomy (each kind maps to a
/// metrics bucket and a stable slug for tooling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectKind {
    /// The line/row could not be parsed at all.
    Syntax,
    /// A subject/relation/object field was empty.
    EmptyField,
    /// The same `(op, s, r, o)` appeared earlier in this batch.
    DuplicateInBatch,
    /// An `add` of a triple that is already live in the store.
    DuplicateOfLive,
    /// A `retract` of a triple that is not live.
    UnknownTriple,
    /// An `add` whose `(subject, relation)` already has a different live
    /// tail (the functional invariant the MCQ builder needs).
    FunctionalConflict,
    /// A name uses words outside the serving tokenizer's closed vocabulary;
    /// the pipeline cannot phrase questions about it.
    OutOfVocabulary,
    /// A new relation past the method's relation-head capacity.
    RelationCapacity,
}

impl RejectKind {
    /// Stable lower-snake slug for logs/JSON.
    pub fn slug(self) -> &'static str {
        match self {
            RejectKind::Syntax => "syntax",
            RejectKind::EmptyField => "empty_field",
            RejectKind::DuplicateInBatch => "duplicate_in_batch",
            RejectKind::DuplicateOfLive => "duplicate_of_live",
            RejectKind::UnknownTriple => "unknown_triple",
            RejectKind::FunctionalConflict => "functional_conflict",
            RejectKind::OutOfVocabulary => "out_of_vocabulary",
            RejectKind::RelationCapacity => "relation_capacity",
        }
    }
}

/// One rejected input record with its source position (1-based line and
/// byte column, 0 when not applicable — e.g. API-level appends).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RejectedRecord {
    /// 1-based source line.
    pub line: usize,
    /// 1-based byte column of the offending field.
    pub col: usize,
    /// Which invariant the record broke.
    pub kind: RejectKind,
    /// Human-readable description.
    pub detail: String,
}

impl std::fmt::Display for RejectedRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}: {}", self.kind.slug(), self.detail)
        } else {
            write!(
                f,
                "line {}, col {}: {}: {}",
                self.line,
                self.col,
                self.kind.slug(),
                self.detail
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_round_trips_wire_names() {
        assert_eq!(DeltaOp::parse("add"), Some(DeltaOp::Add));
        assert_eq!(DeltaOp::parse("retract"), Some(DeltaOp::Retract));
        assert_eq!(DeltaOp::parse("-"), Some(DeltaOp::Retract));
        assert_eq!(DeltaOp::parse("nope"), None);
        assert_eq!(DeltaOp::Add.as_str(), "add");
    }

    #[test]
    fn delta_wire_round_trip() {
        let d = TripleDelta::retract("aspirin", "treats", "headache");
        let w = DeltaWire::from(&d);
        let json = serde_json::to_string(&w).unwrap();
        let back: DeltaWire = serde_json::from_str(&json).unwrap();
        assert_eq!(TripleDelta::try_from(back).unwrap(), d);
    }

    #[test]
    fn empty_fields_detected() {
        assert!(TripleDelta::add("", "r", "o").has_empty_field());
        assert!(TripleDelta::add("s", "  ", "o").has_empty_field());
        assert!(!TripleDelta::add("s", "r", "o").has_empty_field());
    }
}
