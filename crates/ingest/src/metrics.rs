//! `ingest.*` observability handles.
//!
//! One [`IngestMetrics`] is created per pipeline against whichever
//! [`Registry`] should export it — the serve binary passes its
//! `ServeMetrics` registry so `ingest.*` names show up in the same
//! `metrics` wire snapshot as `serve.*`.

use std::sync::Arc;

use infuserki_obs::{Counter, Gauge, Histogram, Registry};

use crate::delta::RejectKind;

/// Handles for every ingest metric (names are stable API).
pub struct IngestMetrics {
    /// `ingest.records_in` — records read from inputs (before validation).
    pub records_in: Arc<Counter>,
    /// `ingest.records_accepted` — records appended to the WAL.
    pub records_accepted: Arc<Counter>,
    /// `ingest.records_rejected` — sum over all reject kinds.
    pub records_rejected: Arc<Counter>,
    /// `ingest.rejected.<kind>` — one counter per [`RejectKind`] slug.
    rejected_by_kind: Vec<(RejectKind, Arc<Counter>)>,
    /// `ingest.wal_bytes` — bytes in the log.
    pub wal_bytes: Arc<Gauge>,
    /// `ingest.snapshot_age_records` — records appended since the last
    /// snapshot (0 right after one).
    pub snapshot_age_records: Arc<Gauge>,
    /// `ingest.pending_deltas` — live deltas waiting for the next round.
    pub pending_deltas: Arc<Gauge>,
    /// `ingest.rounds` — update rounds started.
    pub rounds: Arc<Counter>,
    /// `ingest.bundles_published` — bundles promoted to live.
    pub bundles_published: Arc<Counter>,
    /// `ingest.bundles_refused` — bundles turned away by the NR gate.
    pub bundles_refused: Arc<Counter>,
    /// `ingest.apply_ms` — WAL poll + state apply latency.
    pub apply_ms: Arc<Histogram>,
    /// `ingest.integrate_ms` — detect + train latency per round.
    pub integrate_ms: Arc<Histogram>,
    /// `ingest.package_ms` — bundle build + write latency per round.
    pub package_ms: Arc<Histogram>,
    /// `ingest.publish_ms` — registry load→stage→promote latency.
    pub publish_ms: Arc<Histogram>,
}

impl IngestMetrics {
    /// Registers (or re-attaches to) every ingest metric in `registry`.
    pub fn new(registry: &Registry) -> Self {
        const KINDS: [RejectKind; 8] = [
            RejectKind::Syntax,
            RejectKind::EmptyField,
            RejectKind::DuplicateInBatch,
            RejectKind::DuplicateOfLive,
            RejectKind::UnknownTriple,
            RejectKind::FunctionalConflict,
            RejectKind::OutOfVocabulary,
            RejectKind::RelationCapacity,
        ];
        IngestMetrics {
            records_in: registry.counter("ingest.records_in"),
            records_accepted: registry.counter("ingest.records_accepted"),
            records_rejected: registry.counter("ingest.records_rejected"),
            rejected_by_kind: KINDS
                .iter()
                .map(|&k| {
                    (
                        k,
                        registry.counter(&format!("ingest.rejected.{}", k.slug())),
                    )
                })
                .collect(),
            wal_bytes: registry.gauge("ingest.wal_bytes"),
            snapshot_age_records: registry.gauge("ingest.snapshot_age_records"),
            pending_deltas: registry.gauge("ingest.pending_deltas"),
            rounds: registry.counter("ingest.rounds"),
            bundles_published: registry.counter("ingest.bundles_published"),
            bundles_refused: registry.counter("ingest.bundles_refused"),
            apply_ms: registry.histogram("ingest.apply_ms"),
            integrate_ms: registry.histogram("ingest.integrate_ms"),
            package_ms: registry.histogram("ingest.package_ms"),
            publish_ms: registry.histogram("ingest.publish_ms"),
        }
    }

    /// Counts one rejected record in both the total and its kind bucket.
    pub fn reject(&self, kind: RejectKind) {
        self.records_rejected.inc();
        if let Some((_, c)) = self.rejected_by_kind.iter().find(|(k, _)| *k == kind) {
            c.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infuserki_obs::MetricValue;

    #[test]
    fn reject_counts_total_and_kind() {
        let reg = Registry::new();
        let m = IngestMetrics::new(&reg);
        m.reject(RejectKind::Syntax);
        m.reject(RejectKind::Syntax);
        m.reject(RejectKind::OutOfVocabulary);
        let snap = reg.snapshot();
        assert_eq!(
            snap.get("ingest.records_rejected"),
            Some(&MetricValue::Counter(3))
        );
        assert_eq!(
            snap.get("ingest.rejected.syntax"),
            Some(&MetricValue::Counter(2))
        );
        assert_eq!(
            snap.get("ingest.rejected.out_of_vocabulary"),
            Some(&MetricValue::Counter(1))
        );
    }

    #[test]
    fn metric_names_all_under_ingest_prefix() {
        let reg = Registry::new();
        let _ = IngestMetrics::new(&reg);
        for (name, _) in reg.snapshot().entries {
            assert!(name.starts_with("ingest."), "{name}");
        }
    }
}
