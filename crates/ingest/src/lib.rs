//! # infuserki-ingest
//!
//! Streaming KG ingestion for the InfuserKI serving stack: a durable,
//! WAL-backed triple store and an online knowledge-update pipeline that
//! turns appended facts into live, hot-swappable knowledge bundles.
//!
//! The subsystem closes the loop the paper leaves offline. InfuserKI's
//! output is a small adapter patch over a frozen base model; this crate
//! makes the *input* side continuous too:
//!
//! ```text
//!   feeds (jsonl/csv/tsv/pipe)
//!        │  parse + validate + dedup            [`formats`], [`delta`]
//!        ▼
//!   WAL  (checksummed, sequenced, fsync-batched) [`wal`]
//!        │  snapshots + crash recovery           [`store`]
//!        ▼
//!   update pipeline (batch → detect → train → package → publish)
//!        │                                       [`pipeline`]
//!        ▼
//!   serving registry (load → stage → promote, NR gate)
//! ```
//!
//! Durability contract: a crash at any byte of the log loses at most the
//! un-fsynced tail; recovery replays the surviving prefix onto the latest
//! valid snapshot and reaches a state bitwise-equal (canonical JSON bytes)
//! to a process that never crashed — see `tests/wal_recovery.rs`.
//!
//! The `kg_ingest` binary fronts the library: `append` feeds files into a
//! WAL, `tail` watches a feed file and streams new lines in, `snapshot`,
//! `verify`, and `dump` operate on an existing WAL directory.

pub mod delta;
pub mod formats;
pub mod metrics;
pub mod pipeline;
pub mod store;
pub mod wal;

pub use delta::{DeltaOp, DeltaWire, RejectKind, RejectedRecord, TripleDelta};
pub use formats::{parse_deltas, DeltaFormat, ParseBatch, ParsedDelta};
pub use metrics::IngestMetrics;
pub use pipeline::{
    probe_from_mcq, BundlePublisher, PipelineConfig, PipelineError, PublishError, PublishReport,
    RoundOutcome, UpdatePipeline,
};
pub use store::{
    latest_snapshot_seq, recover, AppendOutcome, Applied, DurableStore, KgState, Recovered,
    StoreOptions,
};
pub use wal::{
    crc32, decode_record, encode_record, read_wal, ReadOutcome, WalError, WalRecord, WalTailer,
    WalWriter, WAL_FILE,
};
