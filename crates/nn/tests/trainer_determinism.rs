//! End-to-end trainer-determinism regression test: the documented
//! index-ordered reduction contract of `compute_batch_grads` (losses and
//! gradients merged in sample-index order, loss summed in f64) plus the
//! bitwise-deterministic kernels must make an entire `train_epoch` run —
//! loss trajectory and every final parameter — identical at any thread
//! count. This pins the contract at `INFUSERKI_THREADS=1` vs `=4` through
//! both knobs that fan work out: the rayon shim (per-sample gradient
//! pipelines) and the kernel band splitter.

use infuserki_nn::layers::Module;
use infuserki_nn::{
    train_epoch, AdamW, AdamWConfig, LmSample, ModelConfig, NoHook, Trainable, TransformerLm,
};
use infuserki_tensor::{kernels, NodeId, Param, Tape};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Full-model trainable via the public API (the crate-internal test wrapper
/// in `trainer.rs` is private to its module).
struct FullModel(TransformerLm);

impl Trainable for FullModel {
    type Sample = LmSample;
    fn loss(&self, s: &LmSample, tape: &mut Tape) -> NodeId {
        self.0.lm_loss(&s.tokens, &s.targets, &NoHook, tape)
    }
    fn visit_trainable(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.0.visit_mut(f);
    }
}

/// Trains a fresh seeded tiny model for three epochs at the given thread
/// count (pinned for both the kernel bands and the rayon shim), returning
/// the per-epoch loss bits and every final parameter bit.
fn run(threads: usize) -> (Vec<u32>, Vec<u32>) {
    kernels::set_num_threads(threads);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("shim pool build is infallible");
    let result = pool.install(|| {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let lm = TransformerLm::new(ModelConfig::tiny(20), &mut rng);
        let mut model = FullModel(lm);
        let samples = vec![
            LmSample::from_completion(&[5], &[7, 9]),
            LmSample::from_completion(&[3, 1], &[2]),
            LmSample::from_completion(&[8], &[4, 6, 11]),
            LmSample::from_completion(&[2, 9], &[13]),
            LmSample::from_completion(&[1], &[17, 5]),
        ];
        let mut opt = AdamW::new(AdamWConfig {
            lr: 3e-3,
            ..AdamWConfig::default()
        });
        let mut losses = Vec::new();
        for _ in 0..3 {
            // Batch of 2 over 5 samples: multi-step epochs with a ragged
            // final batch, so the scale-by-batch-len path is exercised too.
            losses.push(train_epoch(&mut model, &samples, 2, &mut opt, &mut rng).to_bits());
        }
        let mut param_bits = Vec::new();
        model.0.visit(&mut |p| {
            param_bits.extend(p.data().data().iter().map(|v| v.to_bits()));
        });
        (losses, param_bits)
    });
    kernels::set_num_threads(0);
    result
}

#[test]
fn train_epoch_is_bitwise_identical_across_thread_counts() {
    let (losses_1, params_1) = run(1);
    let (losses_4, params_4) = run(4);
    assert_eq!(
        losses_1, losses_4,
        "per-epoch loss trajectory must not depend on the thread count"
    );
    assert_eq!(params_1.len(), params_4.len());
    assert_eq!(
        params_1, params_4,
        "every trained parameter must be bit-identical at 1 vs 4 threads"
    );
    // Sanity: training actually happened (losses decrease overall).
    let first = f32::from_bits(losses_1[0]);
    let last = f32::from_bits(*losses_1.last().unwrap());
    assert!(last < first, "loss should drop: {first} -> {last}");
}
