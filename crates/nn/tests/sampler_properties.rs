//! Property tests on the sampling layer: probability normalization and
//! shift invariance of MCQ option scoring, agreement between the cached
//! shared-prefix scorer and the naive per-option path, and the collapse of
//! width-1 beam search onto greedy decoding.

use std::sync::Mutex;

use infuserki_nn::{sampler, ModelConfig, NoHook, TransformerLm};
use infuserki_tensor::kernels;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const VOCAB: usize = 24;

static THREADS: Mutex<()> = Mutex::new(());

fn model(seed: u64) -> TransformerLm {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    TransformerLm::new(ModelConfig::tiny(VOCAB), &mut rng)
}

fn scores_strategy() -> impl Strategy<Value = Vec<(f32, usize)>> {
    proptest::collection::vec((-30.0f32..0.0, 1usize..6), 2..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn option_probabilities_form_a_distribution(pairs in scores_strategy()) {
        let scores: Vec<f32> = pairs.iter().map(|&(s, _)| s).collect();
        let lengths: Vec<usize> = pairs.iter().map(|&(_, l)| l).collect();
        let probs = sampler::option_probabilities(&scores, &lengths);
        prop_assert_eq!(probs.len(), scores.len());
        for &p in &probs {
            prop_assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        }
        let total: f32 = probs.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-5, "sum {total}");
    }

    #[test]
    fn option_probabilities_invariant_under_uniform_shift(
        pairs in scores_strategy(),
        c in -5.0f32..5.0,
    ) {
        // Scoring is length-normalized, so adding `c · length_i` to every raw
        // score shifts each normalized score by the same constant — a softmax
        // invariance. This is exactly what happens when every option gains
        // one extra token of constant log-probability.
        let scores: Vec<f32> = pairs.iter().map(|&(s, _)| s).collect();
        let lengths: Vec<usize> = pairs.iter().map(|&(_, l)| l).collect();
        let shifted: Vec<f32> = scores
            .iter()
            .zip(&lengths)
            .map(|(&s, &l)| s + c * l as f32)
            .collect();
        let p0 = sampler::option_probabilities(&scores, &lengths);
        let p1 = sampler::option_probabilities(&shifted, &lengths);
        for (a, b) in p0.iter().zip(&p1) {
            prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn cached_score_options_matches_naive_path(
        prompt in proptest::collection::vec(0..VOCAB, 1..10),
        seed in 0u64..3,
    ) {
        let _g = THREADS.lock().unwrap();
        kernels::set_num_threads(1);
        let m = model(seed);
        let options: Vec<Vec<usize>> =
            vec![vec![0], vec![1, 2], vec![3, 4, 5], vec![VOCAB - 1]];
        let cached = sampler::score_options(&m, &NoHook, &prompt, &options);
        let naive = sampler::score_options_uncached(&m, &NoHook, &prompt, &options);
        kernels::set_num_threads(0);
        for (i, (a, b)) in cached.iter().zip(&naive).enumerate() {
            prop_assert!(a.to_bits() == b.to_bits(), "option {i}: {a} vs {b}");
        }
    }

    #[test]
    fn beam_width_one_collapses_to_greedy(
        prompt in proptest::collection::vec(0..VOCAB, 1..8),
        max_new in 1usize..10,
        seed in 0u64..3,
    ) {
        let m = model(seed);
        let beam = sampler::beam_search(&m, &NoHook, &prompt, max_new, 1, None);
        let greedy = sampler::greedy_decode(&m, &NoHook, &prompt, max_new, None);
        prop_assert_eq!(beam, greedy);
    }
}
