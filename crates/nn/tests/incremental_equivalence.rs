//! Differential equivalence for the KV-cached incremental engine: the
//! tape-free `prefill`/`extend_cached`/`decode_step` path must reproduce the
//! tape forward **bitwise** with serial kernels, for every hook interception
//! point (q/v deltas, prefix K/V, output rewrites) and every prompt length
//! up to the context limit.
//!
//! The kernel thread override is process-global, so every test here takes a
//! shared lock before touching it and restores the default before releasing.

use std::sync::Mutex;

use infuserki_nn::hooks::{ForwardTrace, LayerHook};
use infuserki_nn::{sampler, ModelConfig, NoHook, TransformerLm};
use infuserki_tensor::{init, kernels, Matrix, NodeId, Tape};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const VOCAB: usize = 40;

static THREADS: Mutex<()> = Mutex::new(());

fn model(seed: u64) -> TransformerLm {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    TransformerLm::new(ModelConfig::tiny(VOCAB), &mut rng)
}

fn tokens(n: usize) -> Vec<usize> {
    (0..n).map(|i| (i * 7 + 3) % VOCAB).collect()
}

/// Tape-path logits for the whole prompt.
fn full_logits(m: &TransformerLm, toks: &[usize], hook: &dyn LayerHook) -> Matrix {
    let mut tape = Tape::new();
    let id = m.forward(toks, hook, &mut tape);
    tape.value(id).clone()
}

fn assert_bitwise(a: &Matrix, b: &Matrix, ctx: &str) {
    assert_eq!(a.shape(), b.shape(), "{ctx}: shape");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{ctx}: element {i} differs: {x} vs {y}"
        );
    }
}

fn assert_close(a: &[f32], b: &[f32], tol: f32, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: len");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!((x - y).abs() <= tol, "{ctx}: element {i}: {x} vs {y}");
    }
}

// ---- synthetic hooks covering each interception point ----------------------

/// LoRA-shaped: dense additive deltas on the q and v projections.
struct QvDelta {
    dq: Matrix,
    dv: Matrix,
}

impl QvDelta {
    fn new(d: usize) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        QvDelta {
            dq: init::normal(d, d, 0.05, &mut rng),
            dv: init::normal(d, d, 0.05, &mut rng),
        }
    }
}

impl LayerHook for QvDelta {
    fn attn_q_delta(&self, _layer: usize, x: NodeId, tape: &mut Tape) -> Option<NodeId> {
        let w = tape.leaf(self.dq.clone());
        Some(tape.matmul(x, w))
    }

    fn attn_v_delta(&self, _layer: usize, x: NodeId, tape: &mut Tape) -> Option<NodeId> {
        let w = tape.leaf(self.dv.clone());
        Some(tape.matmul(x, w))
    }
}

/// Prefix-tuning-shaped: learnable K/V rows prepended at every layer.
struct PrefixRows {
    k: Matrix,
    v: Matrix,
}

impl PrefixRows {
    fn new(p: usize, d: usize) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(78);
        PrefixRows {
            k: init::normal(p, d, 0.05, &mut rng),
            v: init::normal(p, d, 0.05, &mut rng),
        }
    }
}

impl LayerHook for PrefixRows {
    fn prefix_kv(&self, _layer: usize, tape: &mut Tape) -> Option<(NodeId, NodeId)> {
        let k = tape.leaf(self.k.clone());
        let v = tape.leaf(self.v.clone());
        Some((k, v))
    }
}

/// CALINET/T-Patcher-shaped: row-local rewrites of both sublayer outputs,
/// exercising the default scratch-tape `infer_*` emulation.
struct OutputTweak;

impl LayerHook for OutputTweak {
    fn attn_output(
        &self,
        _layer: usize,
        _attn_in: NodeId,
        attn_out: NodeId,
        tape: &mut Tape,
        _trace: &mut ForwardTrace,
    ) -> NodeId {
        tape.scale(attn_out, 1.1)
    }

    fn ffn_output(
        &self,
        _layer: usize,
        ffn_in: NodeId,
        ffn_out: NodeId,
        tape: &mut Tape,
        _trace: &mut ForwardTrace,
    ) -> NodeId {
        let bent = tape.gelu(ffn_in);
        let scaled = tape.scale(bent, 0.25);
        tape.add(ffn_out, scaled)
    }
}

fn hooks() -> Vec<(&'static str, Box<dyn LayerHook>)> {
    let d = ModelConfig::tiny(VOCAB).d_model;
    vec![
        ("nohook", Box::new(NoHook)),
        ("qv_delta", Box::new(QvDelta::new(d))),
        ("prefix", Box::new(PrefixRows::new(3, d))),
        ("output_tweak", Box::new(OutputTweak)),
    ]
}

// ---- the differential suite ------------------------------------------------

#[test]
fn prefill_matches_full_forward_bitwise_all_hooks_all_lengths() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let m = model(11);
    let max_seq = m.config().max_seq;
    for (name, hook) in hooks() {
        for n in 1..=max_seq {
            let toks = tokens(n);
            let full = full_logits(&m, &toks, hook.as_ref());
            let (_, cached) = m.prefill(&toks, hook.as_ref());
            assert_bitwise(&full, &cached, &format!("{name}, len {n}"));
        }
    }
    kernels::set_num_threads(0);
}

#[test]
fn chunked_extend_matches_full_forward_bitwise() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let m = model(12);
    let toks = tokens(17);
    for (name, hook) in hooks() {
        let full = full_logits(&m, &toks, hook.as_ref());
        // Uneven chunking: 1 + 5 + 2 + 9 tokens.
        for splits in [vec![1, 6, 8, 17], vec![4, 17], vec![16, 17]] {
            let mut cache = m.new_cache(hook.as_ref());
            let mut start = 0;
            for end in splits.clone() {
                let logits = m.extend_cached(&toks[start..end], hook.as_ref(), &mut cache);
                for (i, row) in (start..end).enumerate() {
                    let a = Matrix::row_vec(full.row(row).to_vec());
                    let b = Matrix::row_vec(logits.row(i).to_vec());
                    assert_bitwise(&a, &b, &format!("{name}, splits {splits:?}, row {row}"));
                }
                start = end;
            }
        }
    }
    kernels::set_num_threads(0);
}

#[test]
fn decode_step_matches_full_forward_bitwise() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let m = model(13);
    let toks = tokens(12);
    for (name, hook) in hooks() {
        let (mut cache, first) = m.prefill(&toks[..1], hook.as_ref());
        let mut last_rows = vec![first.row(0).to_vec()];
        for &t in &toks[1..] {
            let logits = m.decode_step(t, hook.as_ref(), &mut cache);
            last_rows.push(logits.row(0).to_vec());
        }
        let full = full_logits(&m, &toks, hook.as_ref());
        for (r, row) in last_rows.iter().enumerate() {
            let a = Matrix::row_vec(full.row(r).to_vec());
            let b = Matrix::row_vec(row.clone());
            assert_bitwise(&a, &b, &format!("{name}, step {r}"));
        }
    }
    kernels::set_num_threads(0);
}

#[test]
fn forked_caches_evolve_independently_and_correctly() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let m = model(14);
    let prefix = tokens(9);
    let suffixes: Vec<Vec<usize>> = vec![vec![1, 2], vec![3, 4, 5], vec![6]];
    for (name, hook) in hooks() {
        let (cache, _) = m.prefill(&prefix, hook.as_ref());
        for (si, suffix) in suffixes.iter().enumerate() {
            let mut branch = cache.fork();
            let logits = m.extend_cached(suffix, hook.as_ref(), &mut branch);
            let mut whole = prefix.clone();
            whole.extend_from_slice(suffix);
            let full = full_logits(&m, &whole, hook.as_ref());
            for (i, row) in (prefix.len()..whole.len()).enumerate() {
                let a = Matrix::row_vec(full.row(row).to_vec());
                let b = Matrix::row_vec(logits.row(i).to_vec());
                assert_bitwise(&a, &b, &format!("{name}, branch {si}, row {row}"));
            }
        }
        // The parent cache is untouched by branch extension.
        assert_eq!(cache.tokens(), prefix.len());
    }
    kernels::set_num_threads(0);
}

#[test]
fn prefill_matches_full_forward_with_parallel_kernels() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(4);
    let m = model(15);
    for (name, hook) in hooks() {
        for n in [1, 5, 19, 32] {
            let toks = tokens(n);
            let full = full_logits(&m, &toks, hook.as_ref());
            let (_, cached) = m.prefill(&toks, hook.as_ref());
            assert_close(
                full.data(),
                cached.data(),
                1e-5,
                &format!("{name}, len {n}, threads 4"),
            );
        }
    }
    kernels::set_num_threads(0);
}

#[test]
fn cached_samplers_match_uncached_on_synthetic_hooks() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let m = model(16);
    let prompt = tokens(6);
    let options: Vec<Vec<usize>> = vec![vec![1], vec![2, 3], vec![4, 5, 6], vec![7, 8]];
    for (name, hook) in hooks() {
        let cached = sampler::score_options(&m, hook.as_ref(), &prompt, &options);
        let naive = sampler::score_options_uncached(&m, hook.as_ref(), &prompt, &options);
        for (i, (a, b)) in cached.iter().zip(&naive).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "{name}: option {i} score {a} vs {b}"
            );
        }
        let g_cached = sampler::greedy_decode(&m, hook.as_ref(), &prompt, 10, None);
        let g_naive = sampler::greedy_decode_uncached(&m, hook.as_ref(), &prompt, 10, None);
        assert_eq!(g_cached, g_naive, "{name}: greedy divergence");
        let b_cached = sampler::beam_search(&m, hook.as_ref(), &prompt, 8, 3, None);
        let b_naive = sampler::beam_search_uncached(&m, hook.as_ref(), &prompt, 8, 3, None);
        assert_eq!(b_cached, b_naive, "{name}: beam divergence");
    }
    kernels::set_num_threads(0);
}
