//! Property tests on the transformer substrate: causality, determinism,
//! finiteness, and loss/score consistency over randomized inputs.

use infuserki_nn::{sampler, ModelConfig, NoHook, TransformerLm};
use infuserki_tensor::op::IGNORE_INDEX;
use infuserki_tensor::Tape;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const VOCAB: usize = 24;

fn model(seed: u64) -> TransformerLm {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    TransformerLm::new(ModelConfig::tiny(VOCAB), &mut rng)
}

fn tokens_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..VOCAB, 2..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn logits_are_finite(tokens in tokens_strategy(), seed in 0u64..4) {
        let m = model(seed);
        let mut tape = Tape::new();
        let logits = m.forward(&tokens, &NoHook, &mut tape);
        prop_assert!(tape.value(logits).all_finite());
        prop_assert_eq!(tape.value(logits).shape(), (tokens.len(), VOCAB));
    }

    #[test]
    fn forward_is_deterministic(tokens in tokens_strategy()) {
        let m = model(1);
        let mut t1 = Tape::new();
        let mut t2 = Tape::new();
        let a = m.forward(&tokens, &NoHook, &mut t1);
        let b = m.forward(&tokens, &NoHook, &mut t2);
        prop_assert_eq!(t1.value(a).data(), t2.value(b).data());
    }

    #[test]
    fn causality_prefix_logits_stable(tokens in tokens_strategy(), extra in 0..VOCAB) {
        // Appending a token must not change any earlier position's logits.
        let m = model(2);
        let mut t1 = Tape::new();
        let mut t2 = Tape::new();
        let short = m.forward(&tokens, &NoHook, &mut t1);
        let mut longer = tokens.clone();
        longer.push(extra);
        let long = m.forward(&longer, &NoHook, &mut t2);
        for r in 0..tokens.len() {
            let a = t1.value(short).row(r);
            let b = t2.value(long).row(r);
            for (x, y) in a.iter().zip(b) {
                prop_assert!((x - y).abs() < 1e-4, "row {r} changed: {x} vs {y}");
            }
        }
    }

    #[test]
    fn lm_loss_positive_and_finite(tokens in tokens_strategy()) {
        let m = model(3);
        let mut targets = tokens.clone();
        targets.rotate_left(1);
        *targets.last_mut().unwrap() = IGNORE_INDEX;
        let mut tape = Tape::new();
        let loss = m.lm_loss(&tokens, &targets, &NoHook, &mut tape);
        let v = tape.value(loss).scalar_value();
        prop_assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn completion_logprob_matches_loss(prompt in proptest::collection::vec(0..VOCAB, 1..4),
                                       completion in proptest::collection::vec(0..VOCAB, 1..4)) {
        // completion_logprob = -(mean CE loss) × (#completion tokens)
        let m = model(4);
        let lp = m.completion_logprob(&prompt, &completion, &NoHook);
        let mut tape = Tape::new();
        let loss = m.completion_loss(&prompt, &completion, &NoHook, &mut tape);
        let mean_ce = tape.value(loss).scalar_value();
        let expected = -mean_ce * completion.len() as f32;
        prop_assert!((lp - expected).abs() < 1e-3 * completion.len() as f32,
            "logprob {lp} vs -loss*n {expected}");
    }

    #[test]
    fn option_scores_rank_consistently(prompt in proptest::collection::vec(0..VOCAB, 1..4)) {
        let m = model(5);
        let options: Vec<Vec<usize>> = (0..4).map(|i| vec![i + 6]).collect();
        let scores = sampler::score_options(&m, &NoHook, &prompt, &options);
        let probs = sampler::option_probabilities(&scores, &[1, 1, 1, 1]);
        // Highest score ⇒ highest probability.
        let best_score = sampler::argmax(&scores);
        let best_prob = sampler::argmax(&probs);
        prop_assert_eq!(best_score, best_prob);
        prop_assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn greedy_decode_prefix_property(prompt in proptest::collection::vec(0..VOCAB, 1..5)) {
        // Decoding k tokens then continuing matches decoding k+j at once.
        let m = model(6);
        let full = sampler::greedy_decode(&m, &NoHook, &prompt, 4, None);
        let first = sampler::greedy_decode(&m, &NoHook, &prompt, 2, None);
        let mut continued_prompt = prompt.clone();
        continued_prompt.extend(&first);
        let rest = sampler::greedy_decode(&m, &NoHook, &continued_prompt, 2, None);
        let mut reassembled = first;
        reassembled.extend(rest);
        prop_assert_eq!(full, reassembled);
    }
}
