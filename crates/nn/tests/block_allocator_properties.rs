//! Model-based property tests for the paged KV block allocator.
//!
//! Random op sequences (alloc / retain / release / copy-on-write / compact /
//! reserve) drive a [`BlockPool`] next to a naive reference allocator that
//! tracks every slot's refcount and freelist position explicitly. After every
//! op the pool's observable accounting (live blocks, live/free/allocated
//! rows, per-block refcounts, peak) must equal the model's, shared blocks
//! must refuse mutable access, and freed ids must refuse release and retain
//! (no double free). A second suite checks that the radix prefix index
//! conserves block references under insert / lookup-adopt / evict sequences:
//! one pool reference per distinct indexed prefix, pinned paths survive LRU
//! eviction, and a fully drained index returns the pool to zero live blocks.

use std::collections::{BTreeSet, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};

use infuserki_nn::{BlockId, BlockPool, PrefixIndex};
use proptest::prelude::*;

const B: usize = 4; // block_rows for every pool in this file
const LAYERS: usize = 2;
const D: usize = 3;

/// Reference model of one freelist slot. `id` is `None` for slots created by
/// `reserve_free_blocks` that the model has never seen returned from `alloc`.
struct FreeSlot {
    id: Option<BlockId>,
    storage: bool,
}

/// Naive reference allocator: live blocks with explicit refcounts plus a
/// LIFO freelist stack mirroring the pool's documented reuse order.
struct ModelPool {
    live: Vec<(BlockId, usize)>,
    free: Vec<FreeSlot>,
    peak: usize,
}

impl ModelPool {
    fn new() -> Self {
        ModelPool {
            live: Vec::new(),
            free: Vec::new(),
            peak: 0,
        }
    }

    /// Registers a block handed out by `alloc`/`copy_block` and checks the
    /// pool reused the freelist top when the model says one was available.
    fn on_alloc(&mut self, id: BlockId) -> Result<(), TestCaseError> {
        if let Some(slot) = self.free.pop() {
            if let Some(expected) = slot.id {
                prop_assert_eq!(id, expected, "alloc must reuse the freelist LIFO top");
            }
        } else {
            prop_assert!(
                self.live.iter().all(|&(l, _)| l != id),
                "fresh slot collided with a live id"
            );
        }
        self.live.push((id, 1));
        self.peak = self.peak.max(self.live.len());
        Ok(())
    }

    fn release(&mut self, idx: usize) {
        self.live[idx].1 -= 1;
        if self.live[idx].1 == 0 {
            let (id, _) = self.live.remove(idx);
            self.free.push(FreeSlot {
                id: Some(id),
                storage: true,
            });
        }
    }

    fn check(&self, pool: &BlockPool) -> Result<(), TestCaseError> {
        prop_assert_eq!(pool.live_blocks(), self.live.len());
        prop_assert_eq!(pool.live_rows(), self.live.len() * B);
        prop_assert_eq!(pool.peak_blocks(), self.peak);
        let free_storage = self.free.iter().filter(|s| s.storage).count();
        prop_assert_eq!(pool.free_rows(), free_storage * B);
        prop_assert_eq!(pool.allocated_rows(), (self.live.len() + free_storage) * B);
        for &(id, refs) in &self.live {
            prop_assert_eq!(pool.refs(id), refs, "live refcount diverged");
        }
        for slot in &self.free {
            if let Some(id) = slot.id {
                prop_assert_eq!(pool.refs(id), 0, "freed slot still referenced");
            }
        }
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// Core model-equivalence property: random alloc / retain (fork) /
    /// release (retire) / copy-on-write / compact / reserve sequences keep
    /// the pool's refcounts, freelist, and row accounting in lockstep with
    /// the naive model, and exclusively-owned block contents survive sharing.
    #[test]
    fn pool_matches_model_allocator(
        ops in proptest::collection::vec((0usize..8, 0usize..4096), 1..100),
    ) {
        let mut pool = BlockPool::new(LAYERS, D, B);
        let mut model = ModelPool::new();
        // Expected k[0][0,0] per live block: stamped at alloc (refs == 1),
        // inherited through copy-on-write, immutable while shared.
        let mut stamps: HashMap<BlockId, f32> = HashMap::new();
        let mut next_stamp = 1.0f32;

        for (sel, arg) in ops {
            match sel {
                // alloc: new exclusive block, stamp its first row.
                0 | 1 => {
                    let id = pool.alloc();
                    model.on_alloc(id)?;
                    pool.block_mut(id).k[0].set(0, 0, next_stamp);
                    stamps.insert(id, next_stamp);
                    next_stamp += 1.0;
                }
                // retain: a fork / prefix-index pin of a random live block.
                2 => {
                    if !model.live.is_empty() {
                        let idx = arg % model.live.len();
                        pool.retain(model.live[idx].0);
                        model.live[idx].1 += 1;
                    }
                }
                // release: one owner retires.
                3 | 4 => {
                    if !model.live.is_empty() {
                        let idx = arg % model.live.len();
                        pool.release(model.live[idx].0);
                        model.release(idx);
                    }
                }
                // copy-on-write from a random live source.
                5 => {
                    if !model.live.is_empty() {
                        let src = model.live[arg % model.live.len()].0;
                        let fill = arg % (B + 1);
                        let dst = pool.copy_block(src, fill);
                        model.on_alloc(dst)?;
                        if fill > 0 {
                            stamps.insert(dst, stamps[&src]);
                        } else {
                            // Nothing copied: reused storage may be stale,
                            // so stamp the exclusive copy fresh.
                            pool.block_mut(dst).k[0].set(0, 0, next_stamp);
                            stamps.insert(dst, next_stamp);
                            next_stamp += 1.0;
                        }
                    }
                }
                // compact: freelist storage goes back to the allocator.
                6 => {
                    pool.compact();
                    for slot in &mut model.free {
                        slot.storage = false;
                    }
                }
                // reserve: warm the freelist for a known decode length.
                _ => {
                    let n = arg % 5;
                    pool.reserve_free_blocks(n);
                    for slot in &mut model.free {
                        slot.storage = true;
                    }
                    while model.free.len() < n {
                        model.free.push(FreeSlot { id: None, storage: true });
                    }
                }
            }
            model.check(&pool)?;
        }

        // Sharing safety: a block with more than one reference must refuse
        // mutable access; double release / retain of a freed id must panic
        // before corrupting the pool.
        if let Some(&(shared, _)) = model.live.iter().find(|&&(_, r)| r > 1) {
            let hit = catch_unwind(AssertUnwindSafe(|| {
                let _ = pool.block_mut(shared);
            }));
            prop_assert!(hit.is_err(), "block_mut must panic on a shared block");
        }
        if let Some(freed) = model.free.iter().rev().find_map(|s| s.id) {
            let hit = catch_unwind(AssertUnwindSafe(|| pool.release(freed)));
            prop_assert!(hit.is_err(), "release of a freed block must panic");
            let hit = catch_unwind(AssertUnwindSafe(|| pool.retain(freed)));
            prop_assert!(hit.is_err(), "retain of a freed block must panic");
            model.check(&pool)?; // the guards fired before any mutation
        }

        // Contents: every live block still carries the stamp written while
        // it was exclusively owned (sharing never mutated it).
        for &(id, _) in &model.live {
            prop_assert_eq!(pool.block(id).k[0].get(0, 0), stamps[&id]);
        }

        // Full retirement drains the pool exactly to zero.
        while let Some(&(id, refs)) = model.live.last() {
            for _ in 0..refs {
                pool.release(id);
            }
            let idx = model.live.len() - 1;
            model.live[idx].1 = 1;
            model.release(idx);
        }
        model.check(&pool)?;
        prop_assert_eq!(pool.live_blocks(), 0);
    }
}

/// Flattens a chunk-pattern path into a token sequence (`B` tokens per
/// pattern id, so distinct paths collide exactly on shared pattern prefixes).
fn path_tokens(path: &[usize]) -> Vec<usize> {
    path.iter().flat_map(|&p| vec![p + 1; B]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Reference-conservation property for the radix prefix index: after
    /// callers insert overlapping prefixes and release their own blocks, the
    /// pool holds exactly one reference per distinct indexed prefix; lookup
    /// matches all but the final block of an indexed path; adopted (pinned)
    /// paths survive LRU eviction while everything else drains; and a fully
    /// drained index leaves zero live blocks.
    #[test]
    fn prefix_index_conserves_block_references(
        paths in proptest::collection::vec(
            proptest::collection::vec(0usize..3, 1..5),
            1..10,
        ),
    ) {
        let mut pool = BlockPool::new(LAYERS, D, B);
        let mut index = PrefixIndex::new(B);

        // Insert every path; the caller allocates its own blocks (as prefill
        // does) and releases them afterwards — the index keeps exactly one
        // reference per node it created.
        for path in &paths {
            let tokens = path_tokens(path);
            let blocks: Vec<BlockId> = (0..path.len()).map(|_| pool.alloc()).collect();
            index.insert(&mut pool, &tokens, &blocks, &None);
            for b in blocks {
                pool.release(b);
            }
        }

        // Naive model: one node per distinct non-empty pattern prefix.
        let mut prefixes: BTreeSet<&[usize]> = BTreeSet::new();
        for path in &paths {
            for d in 1..=path.len() {
                prefixes.insert(&path[..d]);
            }
        }
        prop_assert_eq!(index.len(), prefixes.len());
        prop_assert_eq!(index.indexed_rows(), prefixes.len() * B);
        prop_assert_eq!(pool.live_blocks(), prefixes.len(), "one block per distinct prefix");

        // Lookup matches every indexed block except the last (at least one
        // prompt token must remain un-matched). Adopt the first path's match
        // the way the scheduler does: retain every matched block.
        let mut adopted: Vec<BlockId> = Vec::new();
        let longest = paths.iter().max_by_key(|p| p.len()).unwrap();
        match index.lookup(&path_tokens(longest)) {
            Some(m) => {
                prop_assert_eq!(m.tokens, (longest.len() - 1) * B);
                prop_assert_eq!(m.blocks.len(), longest.len() - 1);
                for &b in &m.blocks {
                    pool.retain(b);
                    adopted.push(b);
                }
            }
            None => prop_assert!(longest.len() == 1, "indexed multi-block path must match"),
        }

        // LRU eviction under pressure: everything un-pinned drains; the
        // adopted path (refs == 2 on every node) survives.
        let before = index.evicted_blocks();
        let mut drained = 0usize;
        while let Some(rows) = index.evict_lru(&mut pool) {
            prop_assert_eq!(rows, B);
            drained += 1;
        }
        prop_assert_eq!(index.len(), adopted.len(), "pinned path survives eviction");
        prop_assert_eq!(drained, prefixes.len() - adopted.len());
        prop_assert_eq!(index.evicted_blocks() - before, drained as u64);
        prop_assert_eq!(pool.live_blocks(), adopted.len());

        // Release the adoption pins; now the index fully drains and the pool
        // returns to zero — no leaked or double-freed block.
        for b in adopted {
            pool.release(b);
        }
        while index.evict_lru(&mut pool).is_some() {}
        prop_assert!(index.is_empty());
        prop_assert_eq!(pool.live_blocks(), 0);
        prop_assert_eq!(index.indexed_rows(), 0);
    }
}
