//! Differential equivalence for the ragged-batch runtime: running N
//! sequences packed through `forward_batch` / `prefill_batch` /
//! `decode_step_batch` / the batched samplers must reproduce the
//! single-sequence path per sequence — **bitwise** with serial kernels, and
//! within 1e-5 with the parallel row-banded kernels (banding depends on the
//! total row count, which batching changes).
//!
//! Batch shapes are property-tested: random batch sizes 1–8 with ragged
//! per-sequence lengths, across every hook interception point (none, q/v
//! deltas, prefix K/V rows, output rewrites).
//!
//! The kernel thread override is process-global, so every test here takes a
//! shared lock before touching it and restores the default before releasing.

use std::sync::Mutex;

use infuserki_nn::hooks::{ForwardTrace, LayerHook};
use infuserki_nn::{sampler, ModelConfig, NoHook, TransformerLm};
use infuserki_tensor::{init, kernels, Matrix, NodeId, Tape};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const VOCAB: usize = 40;

static THREADS: Mutex<()> = Mutex::new(());

fn model(seed: u64) -> TransformerLm {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    TransformerLm::new(ModelConfig::tiny(VOCAB), &mut rng)
}

/// Deterministic per-sequence token pattern, salted so batch members differ.
fn seq(len: usize, salt: usize) -> Vec<usize> {
    (0..len).map(|i| (i * 7 + salt * 13 + 3) % VOCAB).collect()
}

fn assert_bitwise(a: &Matrix, b: &Matrix, ctx: &str) {
    assert_eq!(a.shape(), b.shape(), "{ctx}: shape");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{ctx}: element {i} differs: {x} vs {y}"
        );
    }
}

fn assert_close(a: &Matrix, b: &Matrix, tol: f32, ctx: &str) {
    assert_eq!(a.shape(), b.shape(), "{ctx}: shape");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert!((x - y).abs() <= tol, "{ctx}: element {i}: {x} vs {y}");
    }
}

// ---- synthetic hooks covering each interception point ----------------------

/// LoRA-shaped: dense additive deltas on the q and v projections.
struct QvDelta {
    dq: Matrix,
    dv: Matrix,
}

impl QvDelta {
    fn new(d: usize) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        QvDelta {
            dq: init::normal(d, d, 0.05, &mut rng),
            dv: init::normal(d, d, 0.05, &mut rng),
        }
    }
}

impl LayerHook for QvDelta {
    fn attn_q_delta(&self, _layer: usize, x: NodeId, tape: &mut Tape) -> Option<NodeId> {
        let w = tape.leaf(self.dq.clone());
        Some(tape.matmul(x, w))
    }

    fn attn_v_delta(&self, _layer: usize, x: NodeId, tape: &mut Tape) -> Option<NodeId> {
        let w = tape.leaf(self.dv.clone());
        Some(tape.matmul(x, w))
    }
}

/// Prefix-tuning-shaped: learnable K/V rows prepended at every layer.
struct PrefixRows {
    k: Matrix,
    v: Matrix,
}

impl PrefixRows {
    fn new(p: usize, d: usize) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(78);
        PrefixRows {
            k: init::normal(p, d, 0.05, &mut rng),
            v: init::normal(p, d, 0.05, &mut rng),
        }
    }
}

impl LayerHook for PrefixRows {
    fn prefix_kv(&self, _layer: usize, tape: &mut Tape) -> Option<(NodeId, NodeId)> {
        let k = tape.leaf(self.k.clone());
        let v = tape.leaf(self.v.clone());
        Some((k, v))
    }
}

/// CALINET/T-Patcher-shaped: row-local rewrites of both sublayer outputs,
/// exercising the default per-sequence slicing of `infer_*_output_batch`.
struct OutputTweak;

impl LayerHook for OutputTweak {
    fn attn_output(
        &self,
        _layer: usize,
        _attn_in: NodeId,
        attn_out: NodeId,
        tape: &mut Tape,
        _trace: &mut ForwardTrace,
    ) -> NodeId {
        tape.scale(attn_out, 1.1)
    }

    fn ffn_output(
        &self,
        _layer: usize,
        ffn_in: NodeId,
        ffn_out: NodeId,
        tape: &mut Tape,
        _trace: &mut ForwardTrace,
    ) -> NodeId {
        let bent = tape.gelu(ffn_in);
        let scaled = tape.scale(bent, 0.25);
        tape.add(ffn_out, scaled)
    }
}

fn hooks() -> Vec<(&'static str, Box<dyn LayerHook>)> {
    let d = ModelConfig::tiny(VOCAB).d_model;
    vec![
        ("nohook", Box::new(NoHook)),
        ("qv_delta", Box::new(QvDelta::new(d))),
        ("prefix", Box::new(PrefixRows::new(3, d))),
        ("output_tweak", Box::new(OutputTweak)),
    ]
}

// ---- shared checkers --------------------------------------------------------

/// Batched prefill logits vs per-sequence prefill, per row block.
fn check_prefill(m: &TransformerLm, lens: &[usize], tol: Option<f32>) {
    let seqs: Vec<Vec<usize>> = lens.iter().enumerate().map(|(i, &l)| seq(l, i)).collect();
    for (name, hook) in hooks() {
        let (packed, batch) = m.forward_batch(&seqs, hook.as_ref());
        for (i, s) in seqs.iter().enumerate() {
            let (_, single) = m.prefill(s, hook.as_ref());
            let rng = batch.range(i);
            let got = packed.slice_rows(rng.start, rng.end);
            let ctx = format!("{name}, lens {lens:?}, seq {i}");
            match tol {
                None => assert_bitwise(&single, &got, &ctx),
                Some(t) => assert_close(&single, &got, t, &ctx),
            }
        }
    }
}

/// Batched prefill + several decode steps vs the single-sequence loop.
fn check_decode(m: &TransformerLm, lens: &[usize], steps: usize) {
    let seqs: Vec<Vec<usize>> = lens.iter().enumerate().map(|(i, &l)| seq(l, i)).collect();
    for (name, hook) in hooks() {
        let (mut bcache, _) = m.prefill_batch(&seqs, hook.as_ref());
        let mut singles: Vec<_> = seqs.iter().map(|s| m.prefill(s, hook.as_ref()).0).collect();
        for step in 0..steps {
            let toks: Vec<usize> = (0..seqs.len())
                .map(|i| (step * 5 + i * 3 + 1) % VOCAB)
                .collect();
            let blogits = m.decode_step_batch(&toks, hook.as_ref(), &mut bcache);
            for (i, cache) in singles.iter_mut().enumerate() {
                let slogits = m.decode_step(toks[i], hook.as_ref(), cache);
                let got = Matrix::row_vec(blogits.row(i).to_vec());
                assert_bitwise(
                    &slogits,
                    &got,
                    &format!("{name}, lens {lens:?}, seq {i}, step {step}"),
                );
            }
        }
    }
}

// ---- property tests ---------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Packed batched prefill is bitwise the single path with serial kernels,
    /// for random ragged batch shapes and every hook type.
    #[test]
    fn batched_prefill_bitwise_serial(lens in proptest::collection::vec(1usize..=12, 1..=8)) {
        let _g = THREADS.lock().unwrap();
        kernels::set_num_threads(1);
        let m = model(31);
        check_prefill(&m, &lens, None);
        kernels::set_num_threads(0);
    }

    /// With row-banded parallel kernels the packed result stays within 1e-5
    /// of the single path (banding shifts with total row count).
    #[test]
    fn batched_prefill_close_parallel(lens in proptest::collection::vec(1usize..=12, 2..=8)) {
        let _g = THREADS.lock().unwrap();
        kernels::set_num_threads(4);
        let m = model(32);
        check_prefill(&m, &lens, Some(1e-5));
        kernels::set_num_threads(0);
    }

    /// Whole-batch decode steps are bitwise the per-sequence decode loop.
    #[test]
    fn batched_decode_bitwise_serial(lens in proptest::collection::vec(1usize..=10, 1..=8)) {
        let _g = THREADS.lock().unwrap();
        kernels::set_num_threads(1);
        let m = model(33);
        check_decode(&m, &lens, 4);
        kernels::set_num_threads(0);
    }

    /// Batched greedy decoding returns exactly what looping the
    /// single-sequence sampler returns, ragged prompts and all.
    #[test]
    fn batched_greedy_matches_looped_single(lens in proptest::collection::vec(1usize..=10, 1..=6)) {
        let _g = THREADS.lock().unwrap();
        kernels::set_num_threads(1);
        let m = model(34);
        let prompts: Vec<Vec<usize>> = lens.iter().enumerate().map(|(i, &l)| seq(l, i)).collect();
        for (name, hook) in hooks() {
            let batched = sampler::greedy_decode_batch(&m, hook.as_ref(), &prompts, 8, Some(0));
            for (i, p) in prompts.iter().enumerate() {
                let single = sampler::greedy_decode(&m, hook.as_ref(), p, 8, Some(0));
                assert_eq!(batched[i], single, "{name}, lens {lens:?}, seq {i}");
            }
        }
        kernels::set_num_threads(0);
    }
}

// ---- fixed scenarios --------------------------------------------------------

/// Batched option scoring equals looping `score_options`, bitwise — including
/// the branch `gather` + ragged extension for multi-token options.
#[test]
fn batched_score_options_matches_looped_single() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let m = model(35);
    let prompts: Vec<Vec<usize>> = vec![seq(5, 0), seq(9, 1), seq(1, 2)];
    let options: Vec<Vec<Vec<usize>>> = vec![
        vec![vec![1], vec![2, 3], vec![4, 5, 6], vec![7, 8]],
        vec![vec![9, 10, 11, 12], vec![13]],
        vec![vec![14, 15], vec![16, 17]],
    ];
    let per_q: Vec<&[Vec<usize>]> = options.iter().map(Vec::as_slice).collect();
    for (name, hook) in hooks() {
        let batched = sampler::score_options_batch(&m, hook.as_ref(), &prompts, &per_q);
        for (q, p) in prompts.iter().enumerate() {
            let single = sampler::score_options(&m, hook.as_ref(), p, &options[q]);
            for (oi, (a, b)) in batched[q].iter().zip(&single).enumerate() {
                assert!(
                    a.to_bits() == b.to_bits(),
                    "{name}, q {q}, option {oi}: {a} vs {b}"
                );
            }
        }
    }
    kernels::set_num_threads(0);
}

/// Retiring batch members mid-decode must not perturb the survivors: decode
/// a batch of three, drop the middle sequence, and keep decoding — the
/// remaining two must still match their single-sequence loops bitwise.
#[test]
fn retiring_sequences_mid_decode_leaves_survivors_bitwise() {
    let _g = THREADS.lock().unwrap();
    kernels::set_num_threads(1);
    let m = model(36);
    let seqs: Vec<Vec<usize>> = vec![seq(4, 0), seq(7, 1), seq(2, 2)];
    for (name, hook) in hooks() {
        let (mut bcache, _) = m.prefill_batch(&seqs, hook.as_ref());
        let mut singles: Vec<_> = seqs.iter().map(|s| m.prefill(s, hook.as_ref()).0).collect();
        let toks = [3usize, 11, 19];
        m.decode_step_batch(&toks, hook.as_ref(), &mut bcache);
        for (i, cache) in singles.iter_mut().enumerate() {
            m.decode_step(toks[i], hook.as_ref(), cache);
        }
        bcache.retain_indices(&[0, 2]);
        for step in 0..3 {
            let toks = [(step * 2 + 5) % VOCAB, (step * 3 + 8) % VOCAB];
            let blogits = m.decode_step_batch(&toks, hook.as_ref(), &mut bcache);
            for (slot, &orig) in [0usize, 2].iter().enumerate() {
                let slogits = m.decode_step(toks[slot], hook.as_ref(), &mut singles[orig]);
                let got = Matrix::row_vec(blogits.row(slot).to_vec());
                assert_bitwise(
                    &slogits,
                    &got,
                    &format!("{name}, survivor {orig}, step {step}"),
                );
            }
        }
    }
    kernels::set_num_threads(0);
}

/// Batch-of-1 really is the single path: the wrappers and the batched code
/// agree bitwise even with the default (auto) thread setting, because the
/// packed matrices are identical shapes.
#[test]
fn batch_of_one_is_the_single_path() {
    let m = model(37);
    let p = seq(6, 0);
    for (name, hook) in hooks() {
        let (full, batch) = m.forward_batch(&[&p], hook.as_ref());
        assert_eq!(batch.n_seqs(), 1, "{name}");
        let (_, single) = m.prefill(&p, hook.as_ref());
        assert_bitwise(&single, &full, &format!("{name}, batch-of-1"));
    }
}
