//! Radix index over cached token prefixes — the cross-request sharing map.
//!
//! Nodes are keyed by `block_rows`-token chunks: a node at depth `d`
//! represents the token prefix formed by the chunks on its root path and
//! pins exactly one *full* KV block (the `d`-th block of that prefix) plus a
//! hook-state snapshot taken at the node's token boundary. A new request
//! whose prompt starts with an indexed prefix adopts the path's blocks by
//! reference ([`crate::KvCache::adopt_prefix`]) and prefills only the
//! remainder.
//!
//! Only whole blocks are indexed — insertion happens at block-aligned
//! prefill-chunk boundaries, so every node's state snapshot is exact for its
//! depth. Lookup never consumes the entire prompt: at least one token is
//! left to feed so the engine produces last-position logits for the request
//! itself.
//!
//! Eviction is LRU over *unpinned leaves*: a leaf whose block has no owner
//! besides the index (`refs == 1`) can be dropped; blocks still referenced
//! by live sequences are never evicted (they would stay alive anyway — the
//! index just stops advertising them). Evicting leaves-first keeps the
//! invariant that every indexed path is fully materialized.

use std::collections::HashMap;

use crate::block_alloc::{BlockId, BlockPool};
use crate::hooks::HookState;

struct Node {
    /// Namespace tag of the tree this node belongs to (inherited from its
    /// root). Needed to unlink roots from the tagged root map on eviction.
    tag: u64,
    /// The chunk of tokens this node extends its parent by (`block_rows`
    /// long).
    chunk: Vec<usize>,
    /// The full KV block for this chunk's positions (one index reference
    /// held).
    block: BlockId,
    /// Hook state snapshot at this node's token boundary (`None` for
    /// stateless hooks).
    state: Option<Box<dyn HookState>>,
    parent: Option<usize>,
    children: HashMap<Vec<usize>, usize>,
    /// Logical timestamp of the last lookup/insert touching this node.
    last_used: u64,
}

/// A prefix-cache hit: `blocks` cover the first `tokens` positions of the
/// prompt; `state` is the hook state at that boundary.
pub struct PrefixMatch {
    pub blocks: Vec<BlockId>,
    pub tokens: usize,
    pub state: Option<Box<dyn HookState>>,
}

/// Radix (chunk-trie) index from token prefixes to pinned KV blocks.
///
/// The index is partitioned into disjoint namespaces by a caller-supplied
/// `tag` (the serving layer uses the knowledge-bundle version): entries
/// inserted under one tag are invisible to lookups under another, because KV
/// blocks and hook-state snapshots are only reusable by requests running the
/// *same* hook weights. All namespaces share one LRU clock and one eviction
/// pool, so a hot tag naturally displaces a cold one under budget pressure.
/// The untagged [`PrefixIndex::lookup`]/[`PrefixIndex::insert`] operate on
/// tag 0.
pub struct PrefixIndex {
    block_rows: usize,
    nodes: Vec<Option<Node>>,
    free_nodes: Vec<usize>,
    roots: HashMap<(u64, Vec<usize>), usize>,
    clock: u64,
    evicted: u64,
}

impl PrefixIndex {
    pub fn new(block_rows: usize) -> Self {
        assert!(block_rows > 0, "PrefixIndex: block_rows must be nonzero");
        PrefixIndex {
            block_rows,
            nodes: Vec::new(),
            free_nodes: Vec::new(),
            roots: HashMap::new(),
            clock: 0,
            evicted: 0,
        }
    }

    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Live indexed nodes (== pinned blocks).
    pub fn len(&self) -> usize {
        self.nodes.len() - self.free_nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// KV rows the index pins (block-granular). Admission charges these
    /// against the budget alongside live reservations.
    pub fn indexed_rows(&self) -> usize {
        self.len() * self.block_rows
    }

    /// Blocks evicted over the index's lifetime.
    pub fn evicted_blocks(&self) -> u64 {
        self.evicted
    }

    fn node(&self, id: usize) -> &Node {
        self.nodes[id].as_ref().expect("dangling node id")
    }

    fn node_mut(&mut self, id: usize) -> &mut Node {
        self.nodes[id].as_mut().expect("dangling node id")
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Longest indexed prefix of `prompt` in namespace 0. See
    /// [`PrefixIndex::lookup_in`].
    pub fn lookup(&mut self, prompt: &[usize]) -> Option<PrefixMatch> {
        self.lookup_in(0, prompt)
    }

    /// Longest prefix of `prompt` indexed under `tag`, capped so at least
    /// one prompt token remains un-matched (the engine must still feed
    /// something to get the request's own logits). Touches the matched
    /// path's LRU stamps and returns cloned state from the deepest matched
    /// node. Does *not* take block references — the caller adopts them
    /// (which does) while it holds the scheduler single-threaded.
    pub fn lookup_in(&mut self, tag: u64, prompt: &[usize]) -> Option<PrefixMatch> {
        let b = self.block_rows;
        let now = self.tick();
        let mut matched = 0usize;
        let mut at: Option<usize> = None;
        let mut blocks = Vec::new();
        while matched + b < prompt.len() {
            let chunk = &prompt[matched..matched + b];
            let next = match at {
                None => self.roots.get(&(tag, chunk.to_vec())).copied(),
                Some(id) => self.node(id).children.get(chunk).copied(),
            };
            match next {
                Some(id) => {
                    self.node_mut(id).last_used = now;
                    blocks.push(self.node(id).block);
                    matched += b;
                    at = Some(id);
                }
                None => break,
            }
        }
        at.map(|id| PrefixMatch {
            blocks,
            tokens: matched,
            state: self.node(id).state.clone(),
        })
    }

    /// Indexes a full-block prefix in namespace 0. See
    /// [`PrefixIndex::insert_in`].
    pub fn insert(
        &mut self,
        pool: &mut BlockPool,
        tokens: &[usize],
        blocks: &[BlockId],
        state: &Option<Box<dyn HookState>>,
    ) {
        self.insert_in(pool, 0, tokens, blocks, state)
    }

    /// Indexes under `tag` the full-block prefix `tokens` (length must be a
    /// nonzero multiple of `block_rows`) whose blocks are `blocks`, with
    /// `state` the hook state at the boundary. Existing path nodes are kept
    /// (first writer wins — equivalent content by the determinism contract,
    /// which holds *within* a namespace); only a missing final node takes a
    /// new block reference. Insertion is incremental: callers index every
    /// boundary in order during prefill, so at most the last node is new.
    pub fn insert_in(
        &mut self,
        pool: &mut BlockPool,
        tag: u64,
        tokens: &[usize],
        blocks: &[BlockId],
        state: &Option<Box<dyn HookState>>,
    ) {
        let b = self.block_rows;
        assert!(
            !tokens.is_empty() && tokens.len().is_multiple_of(b),
            "insert: prefix must be whole blocks"
        );
        assert_eq!(
            blocks.len(),
            tokens.len() / b,
            "insert: block count mismatch"
        );
        let now = self.tick();
        let mut at: Option<usize> = None;
        for (d, chunk) in tokens.chunks(b).enumerate() {
            let existing = match at {
                None => self.roots.get(&(tag, chunk.to_vec())).copied(),
                Some(id) => self.node(id).children.get(chunk).copied(),
            };
            let id = match existing {
                Some(id) => {
                    self.node_mut(id).last_used = now;
                    id
                }
                None => {
                    // `state` is the snapshot at the final boundary; it is
                    // only stored verbatim on interior nodes when it is
                    // `None` (stateless hook). Stateful hooks insert one
                    // boundary at a time during aligned prefill, so a fresh
                    // node is always the last of its walk.
                    debug_assert!(d + 1 == blocks.len() || state.is_none());
                    pool.retain(blocks[d]);
                    let node = Node {
                        tag,
                        chunk: chunk.to_vec(),
                        block: blocks[d],
                        state: state.clone(),
                        parent: at,
                        children: HashMap::new(),
                        last_used: now,
                    };
                    let id = match self.free_nodes.pop() {
                        Some(i) => {
                            self.nodes[i] = Some(node);
                            i
                        }
                        None => {
                            self.nodes.push(Some(node));
                            self.nodes.len() - 1
                        }
                    };
                    match at {
                        None => {
                            self.roots.insert((tag, chunk.to_vec()), id);
                        }
                        Some(p) => {
                            self.node_mut(p).children.insert(chunk.to_vec(), id);
                        }
                    }
                    id
                }
            };
            at = Some(id);
        }
    }

    /// Evicts the least-recently-used *unpinned* leaf (block `refs == 1`,
    /// i.e. held only by the index), releasing its block. Returns the rows
    /// freed, or `None` when nothing is evictable. Callers loop this under
    /// admission pressure; repeated calls walk a cold path bottom-up.
    pub fn evict_lru(&mut self, pool: &mut BlockPool) -> Option<usize> {
        let victim = self
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(id, n)| n.as_ref().map(|n| (id, n)))
            .filter(|(_, n)| n.children.is_empty() && pool.refs(n.block) == 1)
            .min_by_key(|(_, n)| n.last_used)
            .map(|(id, _)| id)?;
        let node = self.nodes[victim].take().expect("victim exists");
        self.free_nodes.push(victim);
        match node.parent {
            None => {
                self.roots.remove(&(node.tag, node.chunk));
            }
            Some(p) => {
                self.node_mut(p).children.remove(&node.chunk);
            }
        }
        pool.release(node.block);
        self.evicted += 1;
        Some(self.block_rows)
    }

    /// Drops the whole index, releasing every pinned block (drain/shutdown).
    pub fn clear(&mut self, pool: &mut BlockPool) {
        for node in self.nodes.drain(..).flatten() {
            pool.release(node.block);
            self.evicted += 1;
        }
        self.free_nodes.clear();
        self.roots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_alloc::BlockPool;

    fn pool() -> BlockPool {
        BlockPool::new(1, 4, 2)
    }

    /// Allocates `n` blocks standing in for a sequence's table.
    fn blocks(p: &mut BlockPool, n: usize) -> Vec<BlockId> {
        (0..n).map(|_| p.alloc()).collect()
    }

    #[test]
    fn lookup_misses_on_empty_index_and_short_prompts() {
        let mut idx = PrefixIndex::new(2);
        assert!(idx.lookup(&[1, 2, 3]).is_none());
        let mut p = pool();
        let bs = blocks(&mut p, 1);
        idx.insert(&mut p, &[1, 2], &bs, &None);
        // A prompt equal to the indexed prefix must NOT fully match — one
        // token is always left to feed.
        assert!(idx.lookup(&[1, 2]).is_none());
        assert!(idx.lookup(&[1, 3, 9]).is_none(), "different chunk");
    }

    #[test]
    fn lookup_returns_longest_capped_prefix() {
        let mut idx = PrefixIndex::new(2);
        let mut p = pool();
        let bs = blocks(&mut p, 3);
        idx.insert(&mut p, &[1, 2], &bs[..1], &None);
        idx.insert(&mut p, &[1, 2, 3, 4], &bs[..2], &None);
        idx.insert(&mut p, &[1, 2, 3, 4, 5, 6], &bs[..3], &None);
        let m = idx.lookup(&[1, 2, 3, 4, 9]).expect("two-block hit");
        assert_eq!(m.tokens, 4);
        assert_eq!(m.blocks, bs[..2].to_vec());
        // Prompt continues past the deepest node but the last chunk differs.
        let m = idx.lookup(&[1, 2, 3, 4, 7, 6, 0]).expect("partial hit");
        assert_eq!(m.tokens, 4);
        // Full six-token path matches only when a 7th token remains.
        let m = idx.lookup(&[1, 2, 3, 4, 5, 6, 7]).expect("deep hit");
        assert_eq!(m.tokens, 6);
        assert_eq!(m.blocks.len(), 3);
    }

    #[test]
    fn insert_is_idempotent_and_pins_once() {
        let mut idx = PrefixIndex::new(2);
        let mut p = pool();
        let bs = blocks(&mut p, 1);
        idx.insert(&mut p, &[5, 6], &bs, &None);
        assert_eq!(p.refs(bs[0]), 2, "caller + index");
        // Re-inserting the same prefix (another request racing the same
        // template) keeps the first block and takes no extra reference.
        let other = blocks(&mut p, 1);
        idx.insert(&mut p, &[5, 6], &other, &None);
        assert_eq!(p.refs(bs[0]), 2);
        assert_eq!(p.refs(other[0]), 1, "duplicate insert is dropped");
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn evict_lru_takes_cold_unpinned_leaves_first() {
        let mut idx = PrefixIndex::new(2);
        let mut p = pool();
        let a = blocks(&mut p, 1);
        let b = blocks(&mut p, 2);
        idx.insert(&mut p, &[1, 2], &a, &None);
        idx.insert(&mut p, &[3, 4, 5, 6], &b, &None);
        // Only the index holds these now.
        p.release(a[0]);
        p.release(b[0]);
        p.release(b[1]);
        // Touch the [1,2] path so the [3,4,..] leaf is colder.
        assert!(idx.lookup(&[1, 2, 9]).is_some());
        let freed = idx.evict_lru(&mut p).expect("cold leaf evictable");
        assert_eq!(freed, 2);
        assert_eq!(idx.evicted_blocks(), 1);
        assert_eq!(idx.lookup(&[3, 4, 5, 6, 9]).map(|m| m.tokens), Some(2));
        // Interior [3,4] node became a leaf; next eviction takes it, then
        // the hot root.
        assert!(idx.evict_lru(&mut p).is_some());
        assert!(idx.evict_lru(&mut p).is_some());
        assert!(idx.evict_lru(&mut p).is_none(), "index drained");
        assert_eq!(p.live_blocks(), 0);
    }

    #[test]
    fn pinned_blocks_are_not_evictable() {
        let mut idx = PrefixIndex::new(2);
        let mut p = pool();
        let a = blocks(&mut p, 1);
        idx.insert(&mut p, &[1, 2], &a, &None);
        // Caller still holds a reference (a live sequence uses the block).
        assert!(idx.evict_lru(&mut p).is_none());
        p.release(a[0]);
        assert!(idx.evict_lru(&mut p).is_some());
    }

    #[test]
    fn tags_partition_the_index_into_disjoint_namespaces() {
        let mut idx = PrefixIndex::new(2);
        let mut p = pool();
        let a = blocks(&mut p, 1);
        let b = blocks(&mut p, 1);
        idx.insert_in(&mut p, 1, &[1, 2], &a, &None);
        idx.insert_in(&mut p, 2, &[1, 2], &b, &None);
        // Identical tokens, different tag → different trees, different
        // blocks: a request under bundle 2 must never adopt bundle 1's KV.
        assert_eq!(idx.len(), 2);
        let m1 = idx.lookup_in(1, &[1, 2, 9]).expect("tag-1 hit");
        let m2 = idx.lookup_in(2, &[1, 2, 9]).expect("tag-2 hit");
        assert_eq!(m1.blocks, a);
        assert_eq!(m2.blocks, b);
        assert!(idx.lookup_in(3, &[1, 2, 9]).is_none(), "unknown tag misses");
        // Untagged API is namespace 0, not a union view.
        assert!(idx.lookup(&[1, 2, 9]).is_none());
    }

    #[test]
    fn eviction_unlinks_tagged_roots() {
        let mut idx = PrefixIndex::new(2);
        let mut p = pool();
        let a = blocks(&mut p, 1);
        let b = blocks(&mut p, 1);
        idx.insert_in(&mut p, 7, &[1, 2], &a, &None);
        idx.insert_in(&mut p, 8, &[1, 2], &b, &None);
        p.release(a[0]);
        p.release(b[0]);
        // The tag-7 root is colder; it goes first, and its removal must not
        // disturb the tag-8 tree sharing the same chunk key.
        assert!(idx.lookup_in(8, &[1, 2, 9]).is_some());
        assert!(idx.evict_lru(&mut p).is_some());
        assert!(idx.lookup_in(7, &[1, 2, 9]).is_none());
        assert_eq!(idx.lookup_in(8, &[1, 2, 9]).map(|m| m.blocks), Some(b));
        assert!(idx.evict_lru(&mut p).is_some());
        assert!(idx.evict_lru(&mut p).is_none());
        assert_eq!(p.live_blocks(), 0);
    }

    #[test]
    fn clear_releases_everything() {
        let mut idx = PrefixIndex::new(2);
        let mut p = pool();
        let b = blocks(&mut p, 2);
        idx.insert(&mut p, &[1, 2, 3, 4], &b, &None);
        p.release(b[0]);
        p.release(b[1]);
        idx.clear(&mut p);
        assert_eq!(idx.len(), 0);
        assert_eq!(p.live_blocks(), 0);
        assert_eq!(idx.evicted_blocks(), 2);
    }
}
