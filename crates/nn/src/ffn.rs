//! Position-wise feed-forward network — the sublayer the paper identifies as
//! the transformer's factual-knowledge store (Dai et al. 2022; Geva et al.
//! 2021) and the anchor point for knowledge adapters.

use infuserki_tensor::{kernels, Matrix, NodeId, Param, Tape};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::layers::{Linear, Module};

/// Two-layer GELU MLP: `W2(gelu(W1 x + b1)) + b2`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeedForward {
    w1: Linear,
    w2: Linear,
}

impl FeedForward {
    /// New FFN for layer `layer` with inner width `d_ff`.
    pub fn new(layer: usize, d_model: usize, d_ff: usize, std: f32, rng: &mut impl Rng) -> Self {
        FeedForward {
            w1: Linear::new(&format!("blk{layer}.ffn.w1"), d_model, d_ff, std, true, rng),
            w2: Linear::new(&format!("blk{layer}.ffn.w2"), d_ff, d_model, std, true, rng),
        }
    }

    /// `FFN(x)`.
    pub fn forward(&self, x: NodeId, tape: &mut Tape) -> NodeId {
        let h = self.w1.forward(x, tape);
        let a = tape.gelu(h);
        self.w2.forward(a, tape)
    }

    /// Tape-free `FFN(x)` (KV-cached inference): same projections and the
    /// same [`kernels::gelu_slice`] map as the tape path (in place, SIMD-
    /// dispatched, bitwise-equal to the scalar [`kernels::gelu`] map in every
    /// tier). Row-local, so it is batch-transparent: applied to a packed
    /// multi-sequence matrix, each row's output is bitwise (at one kernel
    /// thread) what it would be with that sequence alone.
    pub fn apply(&self, x: &Matrix) -> Matrix {
        let mut h = self.w1.apply(x);
        kernels::gelu_slice(h.data_mut());
        self.w2.apply(&h)
    }

    /// Inner width (T-Patcher appends neurons logically after this).
    pub fn d_ff(&self) -> usize {
        self.w1.shape().1
    }

    /// First projection (up into the FFN's key space).
    pub fn w1(&self) -> &Linear {
        &self.w1
    }

    /// Second projection (down from the FFN's value space).
    pub fn w2(&self) -> &Linear {
        &self.w2
    }

    /// Mutable projections for quantization experiments.
    pub fn projections_mut(&mut self) -> [&mut Linear; 2] {
        [&mut self.w1, &mut self.w2]
    }
}

impl Module for FeedForward {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        self.w1.visit(f);
        self.w2.visit(f);
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.w1.visit_mut(f);
        self.w2.visit_mut(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infuserki_tensor::Matrix;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn forward_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let f = FeedForward::new(0, 8, 16, 0.2, &mut rng);
        let mut t = Tape::new();
        let x = t.leaf(Matrix::full(3, 8, 0.5));
        let y = f.forward(x, &mut t);
        assert_eq!(t.value(y).shape(), (3, 8));
        assert_eq!(f.d_ff(), 16);
    }

    #[test]
    fn rows_are_independent() {
        // Position-wise: changing one row must not affect another.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let f = FeedForward::new(0, 4, 8, 0.3, &mut rng);
        let run = |second_row: f32| {
            let mut t = Tape::new();
            let mut m = Matrix::full(2, 4, 0.2);
            for c in 0..4 {
                m.set(1, c, second_row);
            }
            let x = t.leaf(m);
            let y = f.forward(x, &mut t);
            t.value(y).row(0).to_vec()
        };
        assert_eq!(run(1.0), run(-1.0));
    }

    #[test]
    fn numel() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let f = FeedForward::new(0, 4, 8, 0.3, &mut rng);
        assert_eq!(f.numel(), 4 * 8 + 8 + 8 * 4 + 4);
    }
}
