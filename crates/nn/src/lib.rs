//! # infuserki-nn
//!
//! A decoder-only transformer language model (`SmolLM`) built on
//! `infuserki-tensor`, plus the optimizer and training machinery shared by
//! the InfuserKI method and every baseline.
//!
//! The model exposes **hook points** ([`hooks::LayerHook`]) at each layer's
//! attention and FFN sublayers. The InfuserKI adapters, LoRA, QLoRA, prefix
//! tuning, CALINET and T-Patcher all inject themselves through these hooks,
//! so a single frozen base model serves every method — mirroring how the
//! paper patches a frozen LLaMa-2.

pub mod attention;
pub mod block;
pub mod block_alloc;
pub mod config;
pub mod ffn;
pub mod hooks;
pub mod kv_cache;
pub mod layers;
pub mod model;
pub mod optim;
pub mod prefix_index;
pub mod sampler;
pub mod trainer;

pub use block_alloc::{BlockId, BlockPool, PoolHandle};
pub use config::ModelConfig;
pub use hooks::{ForwardTrace, HookState, LayerHook, NoHook};
pub use kv_cache::KvCache;
pub use model::TransformerLm;
pub use optim::{AdamW, AdamWConfig};
pub use prefix_index::{PrefixIndex, PrefixMatch};
pub use trainer::{compute_batch_grads, eval_loss, train_epoch, LmSample, Trainable};
