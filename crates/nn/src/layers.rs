//! Primitive layers: linear projections, embeddings, layer norm.

use infuserki_tensor::{
    infer, init, kernels, Matrix, NodeId, Param, QuantSpec, QuantizedMatrix, Tape,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Visitor over a module's trainable parameters.
///
/// Implemented by every layer and model; the optimizer and checkpointing walk
/// parameters through this trait so ownership stays inside the module tree.
pub trait Module {
    /// Visits each parameter immutably.
    fn visit(&self, f: &mut dyn FnMut(&Param));
    /// Visits each parameter mutably (optimizer updates).
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Total scalar parameter count.
    fn numel(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |p| n += p.numel());
        n
    }
}

/// Affine projection `y = x W + b`.
///
/// A frozen projection can additionally carry packed int8 weights
/// ([`Linear::quantize_frozen`]): [`Linear::apply`] then runs the fused
/// dequant-matmul, while `w` holds the *dequantized* f32 values — so the
/// tape path, checkpoints and any code reading `weight()` see exactly the
/// numbers inference folds, and the two stay bitwise consistent. The packed
/// form is rebuilt at load, not serialized (`#[serde(skip)]`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    w: Param,
    b: Option<Param>,
    #[serde(skip)]
    qw: Option<QuantizedMatrix>,
}

impl Linear {
    /// New linear layer with `N(0, std²)` weights and zero bias.
    pub fn new(
        name: &str,
        d_in: usize,
        d_out: usize,
        std: f32,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        Linear {
            w: Param::new(format!("{name}.w"), init::normal(d_in, d_out, std, rng)),
            b: bias.then(|| Param::new(format!("{name}.b"), Matrix::zeros(1, d_out))),
            qw: None,
        }
    }

    /// New linear layer with all-zero weights (adapter up-projections start
    /// as the identity mapping in residual form).
    pub fn zeros(name: &str, d_in: usize, d_out: usize, bias: bool) -> Self {
        Linear {
            w: Param::new(format!("{name}.w"), Matrix::zeros(d_in, d_out)),
            b: bias.then(|| Param::new(format!("{name}.b"), Matrix::zeros(1, d_out))),
            qw: None,
        }
    }

    /// Applies the projection on the tape. With a bias this records the fused
    /// [`Tape::affine`] node (one output allocation, one backward dispatch);
    /// without one it falls back to a plain matmul.
    pub fn forward(&self, x: NodeId, tape: &mut Tape) -> NodeId {
        let w = tape.param(&self.w);
        match &self.b {
            Some(b) => {
                let bn = tape.param(b);
                tape.affine(x, w, bn)
            }
            None => tape.matmul(x, w),
        }
    }

    /// Tape-free projection on a plain matrix (KV-cached inference). Shares
    /// its arithmetic with the tape path ([`infer::affine`] / the same matmul
    /// kernel), so outputs are bitwise identical row for row — and therefore
    /// batch-transparent: rows of a packed multi-sequence matrix project
    /// exactly as they would alone.
    ///
    /// A quantized projection routes through the fused int8 dequant-matmul,
    /// which is bitwise-identical to the dense product over the dequantized
    /// `w` this layer then holds — so the contract above survives
    /// quantization unchanged.
    pub fn apply(&self, x: &Matrix) -> Matrix {
        if let Some(qw) = &self.qw {
            let mut v = qw.matmul(x);
            if let Some(b) = &self.b {
                // Same bias pass as `infer::affine`: one `+=` per element
                // after the matmul chain.
                let brow = b.data().row(0).to_vec();
                for r in 0..v.rows() {
                    for (o, &bv) in v.row_mut(r).iter_mut().zip(brow.iter()) {
                        *o += bv;
                    }
                }
            }
            return v;
        }
        match &self.b {
            Some(b) => infer::affine(x, self.w.data(), b.data()),
            None => kernels::matmul(x, self.w.data()),
        }
    }

    /// Quantizes this projection's weights to packed int8 blocks and replaces
    /// `w` with their dequantized values, so every non-fused reader (tape
    /// forwards, checkpoints, analysis) sees exactly the numbers the fused
    /// kernel folds. Inference-only contract: mutating the weights afterwards
    /// (training) would desync the packed copy — freeze first, quantize last.
    pub fn quantize_frozen(&mut self, spec: QuantSpec) {
        let qm = QuantizedMatrix::quantize(self.w.data(), spec);
        *self.w.data_mut() = qm.dequantize();
        self.qw = Some(qm);
    }

    /// The packed int8 weights, when [`Linear::quantize_frozen`] has run.
    pub fn quantized(&self) -> Option<&QuantizedMatrix> {
        self.qw.as_ref()
    }

    /// Whether this projection runs the fused int8 path.
    pub fn is_quantized(&self) -> bool {
        self.qw.is_some()
    }

    /// Weight parameter.
    pub fn weight(&self) -> &Param {
        &self.w
    }

    /// Mutable weight parameter (quantization experiments). Writing through
    /// this on a [`Linear::is_quantized`] layer desyncs the packed int8 copy
    /// — quantization is inference-only, re-quantize after any edit.
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.w
    }

    /// Bias parameter, if present.
    pub fn bias(&self) -> Option<&Param> {
        self.b.as_ref()
    }

    /// Input/output sizes `(d_in, d_out)`.
    pub fn shape(&self) -> (usize, usize) {
        self.w.data().shape()
    }
}

impl Module for Linear {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.w);
        if let Some(b) = &self.b {
            f(b);
        }
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        if let Some(b) = &mut self.b {
            f(b);
        }
    }
}

/// Token (or positional) embedding table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedding {
    table: Param,
}

impl Embedding {
    /// New table `[vocab, d]` with `N(0, std²)` entries.
    pub fn new(name: &str, vocab: usize, d: usize, std: f32, rng: &mut impl Rng) -> Self {
        Embedding {
            table: Param::new(name, init::normal(vocab, d, std, rng)),
        }
    }

    /// Gathers rows for `ids`.
    pub fn forward(&self, ids: &[usize], tape: &mut Tape) -> NodeId {
        let t = tape.param(&self.table);
        tape.embedding(t, ids)
    }

    /// Tape-free row gather (KV-cached inference).
    pub fn gather(&self, ids: &[usize]) -> Matrix {
        let t = self.table.data();
        let mut out = Matrix::zeros(ids.len(), t.cols());
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < t.rows(), "embedding id {id} out of range");
            out.row_mut(r).copy_from_slice(t.row(id));
        }
        out
    }

    /// The raw table parameter (tied LM head reads it).
    pub fn table(&self) -> &Param {
        &self.table
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.data().rows()
    }
}

impl Module for Embedding {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.table);
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.table);
    }
}

/// Layer normalization with learnable gain and bias.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerNorm {
    gain: Param,
    bias: Param,
    eps: f32,
}

impl LayerNorm {
    /// New layer norm over width `d` (gain=1, bias=0).
    pub fn new(name: &str, d: usize, eps: f32) -> Self {
        LayerNorm {
            gain: Param::new(format!("{name}.g"), Matrix::full(1, d, 1.0)),
            bias: Param::new(format!("{name}.b"), Matrix::zeros(1, d)),
            eps,
        }
    }

    /// Normalizes each row of `x`.
    pub fn forward(&self, x: NodeId, tape: &mut Tape) -> NodeId {
        let g = tape.param(&self.gain);
        let b = tape.param(&self.bias);
        tape.layer_norm(x, g, b, self.eps)
    }

    /// Tape-free normalization (KV-cached inference); same arithmetic as the
    /// tape path via [`infer::layer_norm`]. Normalization statistics are
    /// per-row, so packed multi-sequence input normalizes batch-transparently.
    pub fn apply(&self, x: &Matrix) -> Matrix {
        infer::layer_norm(x, self.gain.data(), self.bias.data(), self.eps)
    }
}

impl Module for LayerNorm {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.gain);
        f(&self.bias);
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gain);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn linear_forward_shapes_and_bias() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let lin = Linear::new("l", 3, 2, 0.1, true, &mut rng);
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(4, 3));
        let y = lin.forward(x, &mut t);
        assert_eq!(t.value(y).shape(), (4, 2));
        // zero input → output equals bias (zero here)
        assert!(t.value(y).data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn linear_zeros_is_zero_map() {
        let lin = Linear::zeros("z", 3, 3, false);
        let mut t = Tape::new();
        let x = t.leaf(Matrix::full(2, 3, 5.0));
        let y = lin.forward(x, &mut t);
        assert!(t.value(y).data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn linear_module_numel() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let lin = Linear::new("l", 3, 2, 0.1, true, &mut rng);
        assert_eq!(lin.numel(), 3 * 2 + 2);
        let nobias = Linear::new("l", 3, 2, 0.1, false, &mut rng);
        assert_eq!(nobias.numel(), 6);
    }

    #[test]
    fn embedding_gathers() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let e = Embedding::new("e", 5, 4, 0.5, &mut rng);
        let mut t = Tape::new();
        let x = e.forward(&[3, 3, 0], &mut t);
        assert_eq!(t.value(x).shape(), (3, 4));
        assert_eq!(t.value(x).row(0), t.value(x).row(1));
        assert_eq!(e.vocab(), 5);
    }

    #[test]
    fn layer_norm_standardizes() {
        let ln = LayerNorm::new("ln", 4, 1e-5);
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]));
        let y = ln.forward(x, &mut t);
        let v = t.value(y);
        let mean: f32 = v.row(0).iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-4);
    }

    #[test]
    fn visit_counts_params() {
        let ln = LayerNorm::new("ln", 4, 1e-5);
        let mut count = 0;
        ln.visit(&mut |_| count += 1);
        assert_eq!(count, 2);
    }
}
