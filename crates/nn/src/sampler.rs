//! Decoding and option scoring.
//!
//! The paper evaluates knowledge with multiple-choice questions: the LLM
//! generates an answer and a regex extracts the chosen option letter. For the
//! reproduction we implement both (a) greedy generation with letter
//! extraction (matching the paper's protocol) and (b) direct option
//! log-likelihood scoring (used by the Fig. 7 case-study probability tables).
//!
//! Both run batch-first: [`greedy_decode_batch`] advances N prompts per
//! decode step and [`score_options_batch`] scores every option of every
//! question of a set in one ragged batch. The single-sequence entry points
//! are batch-of-1 wrappers, and at one kernel thread the batched paths are
//! bitwise-equal to looping them (see `tests/batch_equivalence.rs`).

use infuserki_tensor::{kernels, Matrix, SeqBatch, Tape};

use crate::hooks::LayerHook;
use crate::kv_cache::KvCache;
use crate::model::TransformerLm;

/// Greedy-decodes up to `max_new` tokens after `prompt`, stopping early at
/// `eos` (if given). Returns only the newly generated tokens.
///
/// Runs on the KV-cached incremental engine: the prompt is prefilled once and
/// each new token costs a single-row decode step. Produces exactly the tokens
/// of [`greedy_decode_uncached`] (the pre-cache full-recompute path, kept as
/// the differential-test reference); hooks that cannot decode incrementally
/// fall back to it automatically.
pub fn greedy_decode(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    prompt: &[usize],
    max_new: usize,
    eos: Option<usize>,
) -> Vec<usize> {
    greedy_decode_batch(model, hook, &[prompt], max_new, eos)
        .pop()
        .unwrap()
}

/// Greedy-decodes every prompt of a batch concurrently with a shared
/// per-prompt token budget. See [`greedy_decode_batch_limits`].
pub fn greedy_decode_batch<S: AsRef<[usize]>>(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    prompts: &[S],
    max_new: usize,
    eos: Option<usize>,
) -> Vec<Vec<usize>> {
    let limits = vec![max_new; prompts.len()];
    greedy_decode_batch_limits(model, hook, prompts, &limits, eos)
}

/// Batched greedy decoding: prefills all prompts as one ragged batch, then
/// advances every still-live sequence by one token per decode step, retiring
/// sequences as they hit `eos`, their own `max_new[i]` budget, or the model's
/// context limit. Returns one completion per prompt, each exactly the tokens
/// [`greedy_decode`] produces for that prompt alone (bitwise logits equality
/// at one kernel thread). Hooks without incremental support fall back to the
/// per-prompt uncached path.
pub fn greedy_decode_batch_limits<S: AsRef<[usize]>>(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    prompts: &[S],
    max_new: &[usize],
    eos: Option<usize>,
) -> Vec<Vec<usize>> {
    assert_eq!(
        prompts.len(),
        max_new.len(),
        "greedy_decode_batch: limit/prompt mismatch"
    );
    if prompts.is_empty() {
        return Vec::new();
    }
    if !hook.supports_incremental() {
        return prompts
            .iter()
            .zip(max_new)
            .map(|(p, &l)| greedy_decode_uncached(model, hook, p.as_ref(), l, eos))
            .collect();
    }
    let max_seq = model.config().max_seq;
    let mut outs: Vec<Vec<usize>> = prompts.iter().map(|_| Vec::new()).collect();
    // `live` maps cache sequence slots to prompt indices; prompts with no
    // budget or no room in the context emit nothing, as the single path does.
    let mut live: Vec<usize> = (0..prompts.len())
        .filter(|&i| max_new[i] > 0 && prompts[i].as_ref().len() < max_seq)
        .collect();
    if live.is_empty() {
        return outs;
    }
    let live_prompts: Vec<&[usize]> = live.iter().map(|&i| prompts[i].as_ref()).collect();
    let (mut cache, logits) = model.prefill_batch(&live_prompts, hook);
    // Reserve the whole decode budget once so per-token K/V appends never
    // reallocate.
    let budget = live
        .iter()
        .map(|&i| max_new[i].min(max_seq - prompts[i].as_ref().len()))
        .max()
        .unwrap();
    cache.reserve_rows(budget);
    let lens: Vec<usize> = live_prompts.iter().map(|p| p.len()).collect();
    let batch = SeqBatch::from_lens(&lens);
    let mut next: Vec<usize> = (0..live.len())
        .map(|s| argmax(logits.row(batch.last_row(s))))
        .collect();
    loop {
        let mut keep_pos: Vec<usize> = Vec::with_capacity(live.len());
        let mut step: Vec<usize> = Vec::with_capacity(live.len());
        for (pos, &i) in live.iter().enumerate() {
            let tok = next[pos];
            if Some(tok) == eos {
                continue;
            }
            outs[i].push(tok);
            let n_tokens = prompts[i].as_ref().len() + outs[i].len();
            if outs[i].len() == max_new[i] || n_tokens >= max_seq {
                continue;
            }
            keep_pos.push(pos);
            step.push(tok);
        }
        if keep_pos.is_empty() {
            break;
        }
        if keep_pos.len() < live.len() {
            cache.retain_indices(&keep_pos);
            let survivors: Vec<usize> = keep_pos.iter().map(|&p| live[p]).collect();
            live = survivors;
        }
        let logits = model.decode_step_batch(&step, hook, &mut cache);
        next = (0..live.len()).map(|s| argmax(logits.row(s))).collect();
    }
    outs
}

/// The pre-cache greedy decoder: recomputes the full forward pass for every
/// generated token. Reference implementation for the differential equivalence
/// suite and the fallback for hooks without incremental support.
pub fn greedy_decode_uncached(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    prompt: &[usize],
    max_new: usize,
    eos: Option<usize>,
) -> Vec<usize> {
    let mut tokens = prompt.to_vec();
    let mut out = Vec::with_capacity(max_new);
    for _ in 0..max_new {
        if tokens.len() >= model.config().max_seq {
            break;
        }
        let mut tape = Tape::new();
        let logits = model.forward(&tokens, hook, &mut tape);
        let v = tape.value(logits);
        let last = v.row(v.rows() - 1);
        let next = argmax(last);
        if Some(next) == eos {
            break;
        }
        out.push(next);
        tokens.push(next);
    }
    out
}

/// Sums each candidate completion's log-likelihood after `prompt`.
///
/// Shared-prefix scoring: the prompt is prefilled into a KV cache once, and
/// every option is scored from its own fork of that cache — so an MCQ with
/// four options pays for one prompt forward instead of four. Matches
/// [`score_options_uncached`] row for row (bitwise at one kernel thread).
pub fn score_options(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    prompt: &[usize],
    options: &[Vec<usize>],
) -> Vec<f32> {
    score_options_batch(model, hook, &[prompt], &[options])
        .pop()
        .unwrap()
}

/// Batched option scoring: `options[q]` are the candidate completions for
/// `prompts[q]`. All prompts prefill as one ragged batch, and every
/// multi-token option across every question extends a branch of its prompt's
/// cache in one further ragged batch — an MCQ template of N questions pays
/// two batched forwards instead of N prefill + 4N extension calls. Returns
/// one score vector per question, each matching [`score_options`] on that
/// question alone (bitwise at one kernel thread). Questions with empty
/// prompts, or hooks without incremental support, fall back to the uncached
/// path exactly as the single-question entry point does.
pub fn score_options_batch<S: AsRef<[usize]>>(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    prompts: &[S],
    options: &[&[Vec<usize>]],
) -> Vec<Vec<f32>> {
    assert_eq!(
        prompts.len(),
        options.len(),
        "score_options_batch: prompt/option mismatch"
    );
    if prompts.is_empty() {
        return Vec::new();
    }
    if !hook.supports_incremental() {
        return prompts
            .iter()
            .zip(options)
            .map(|(p, opts)| score_options_uncached(model, hook, p.as_ref(), opts))
            .collect();
    }
    let mut scores: Vec<Vec<f32>> = vec![Vec::new(); prompts.len()];
    let cached: Vec<usize> = (0..prompts.len())
        .filter(|&q| !prompts[q].as_ref().is_empty())
        .collect();
    for q in 0..prompts.len() {
        if prompts[q].as_ref().is_empty() {
            scores[q] = score_options_uncached(model, hook, prompts[q].as_ref(), options[q]);
        }
    }
    if cached.is_empty() {
        return scores;
    }
    let cached_prompts: Vec<&[usize]> = cached.iter().map(|&q| prompts[q].as_ref()).collect();
    let (cache, logits) = model.prefill_batch(&cached_prompts, hook);
    let lens: Vec<usize> = cached_prompts.iter().map(|p| p.len()).collect();
    let pbatch = SeqBatch::from_lens(&lens);
    // Each prompt's last row predicts its options' first tokens; log-softmax
    // is row-local, so normalizing the extracted row matches the full path.
    for (bi, &q) in cached.iter().enumerate() {
        let last_lp =
            kernels::log_softmax_rows(&Matrix::row_vec(logits.row(pbatch.last_row(bi)).to_vec()));
        scores[q] = options[q]
            .iter()
            .map(|opt| {
                assert!(!opt.is_empty(), "completion_logprob: empty completion");
                last_lp.get(0, opt[0])
            })
            .collect();
    }
    // Multi-token options branch their prompt's cache (`gather` duplicates
    // the prefilled sequence once per option) and all branches extend
    // together as one ragged batch.
    let mut src: Vec<usize> = Vec::new();
    let mut which: Vec<(usize, usize)> = Vec::new();
    let mut chunks: Vec<&[usize]> = Vec::new();
    for (bi, &q) in cached.iter().enumerate() {
        for (oi, opt) in options[q].iter().enumerate() {
            if opt.len() > 1 {
                src.push(bi);
                which.push((q, oi));
                chunks.push(&opt[..opt.len() - 1]);
            }
        }
    }
    if !chunks.is_empty() {
        let mut branches = cache.gather(&src);
        let blogits = model.extend_cached_batch(&chunks, hook, &mut branches);
        let blens: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
        let bbatch = SeqBatch::from_lens(&blens);
        for (j, &(q, oi)) in which.iter().enumerate() {
            let r = bbatch.range(j);
            let lp = kernels::log_softmax_rows(&blogits.slice_rows(r.start, r.end));
            let opt = &options[q][oi];
            for (i, &tok) in opt[1..].iter().enumerate() {
                scores[q][oi] += lp.get(i, tok);
            }
        }
    }
    scores
}

/// The pre-cache option scorer: one full forward per option. Reference
/// implementation for the differential suite and the non-incremental
/// fallback.
pub fn score_options_uncached(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    prompt: &[usize],
    options: &[Vec<usize>],
) -> Vec<f32> {
    options
        .iter()
        .map(|opt| model.completion_logprob(prompt, opt, hook))
        .collect()
}

/// Normalizes per-option log-likelihoods into a probability distribution
/// (length-normalized to avoid favoring short options).
pub fn option_probabilities(scores: &[f32], lengths: &[usize]) -> Vec<f32> {
    assert_eq!(scores.len(), lengths.len());
    let normed: Vec<f32> = scores
        .iter()
        .zip(lengths)
        .map(|(&s, &l)| s / l.max(1) as f32)
        .collect();
    let m = kernels::softmax_rows(&infuserki_tensor::Matrix::row_vec(normed));
    m.into_vec()
}

/// Beam-search decoding: keeps the `beam_width` highest-log-probability
/// continuations at each step. Returns the best completed sequence (new
/// tokens only). Falls back to the best live beam if nothing hits `eos`.
///
/// Each live beam carries its own fork of the prompt's KV cache, so a step
/// costs one single-row decode per expansion instead of a full-sequence
/// forward per beam. Candidate ordering, pruning and final selection are the
/// same as [`beam_search_uncached`], so the chosen sequence is identical.
pub fn beam_search(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    prompt: &[usize],
    max_new: usize,
    beam_width: usize,
    eos: Option<usize>,
) -> Vec<usize> {
    assert!(beam_width >= 1, "beam width must be at least 1");
    if !hook.supports_incremental() {
        return beam_search_uncached(model, hook, prompt, max_new, beam_width, eos);
    }
    struct Beam {
        tokens: Vec<usize>,
        score: f32,
        done: bool,
        /// Cache over `prompt ++ tokens` plus the log-probs of the next
        /// token; `None` once the beam is done or the context is full.
        branch: Option<(KvCache, Vec<f32>)>,
    }
    let frozen = |b: &Beam| Beam {
        tokens: b.tokens.clone(),
        score: b.score,
        done: true,
        branch: None,
    };
    let max_seq = model.config().max_seq;
    let root_branch = (prompt.len() < max_seq).then(|| {
        let (cache, logits) = model.prefill(prompt, hook);
        let lp =
            kernels::log_softmax_rows(&Matrix::row_vec(logits.row(logits.rows() - 1).to_vec()));
        (cache, lp.into_vec())
    });
    let mut beams = vec![Beam {
        tokens: Vec::new(),
        score: 0.0,
        done: false,
        branch: root_branch,
    }];
    for _ in 0..max_new {
        if beams.iter().all(|b| b.done) {
            break;
        }
        let mut candidates: Vec<Beam> = Vec::new();
        for beam in &beams {
            if beam.done {
                candidates.push(frozen(beam));
                continue;
            }
            let Some((cache, last)) = &beam.branch else {
                // Context full: freeze the beam, as the uncached path does.
                candidates.push(frozen(beam));
                continue;
            };
            // Top beam_width expansions of this beam.
            let mut idx: Vec<usize> = (0..last.len()).collect();
            idx.sort_by(|&a, &b| last[b].total_cmp(&last[a]));
            for &tok in idx.iter().take(beam_width) {
                let score = beam.score + last[tok];
                if Some(tok) == eos {
                    candidates.push(Beam {
                        tokens: beam.tokens.clone(),
                        score,
                        done: true,
                        branch: None,
                    });
                    continue;
                }
                let mut tokens = beam.tokens.clone();
                tokens.push(tok);
                let branch = (prompt.len() + tokens.len() < max_seq).then(|| {
                    let mut fork = cache.fork();
                    let logits = model.decode_step(tok, hook, &mut fork);
                    let lp = kernels::log_softmax_rows(&logits);
                    (fork, lp.into_vec())
                });
                candidates.push(Beam {
                    tokens,
                    score,
                    done: false,
                    branch,
                });
            }
        }
        // Length-normalized pruning so longer beams are not starved.
        candidates.sort_by(|a, b| {
            let an = a.score / (a.tokens.len().max(1) as f32);
            let bn = b.score / (b.tokens.len().max(1) as f32);
            bn.total_cmp(&an)
        });
        candidates.truncate(beam_width);
        beams = candidates;
    }
    beams
        .into_iter()
        .max_by(|a, b| {
            let an = a.score / (a.tokens.len().max(1) as f32);
            let bn = b.score / (b.tokens.len().max(1) as f32);
            an.total_cmp(&bn)
        })
        .map(|b| b.tokens)
        .unwrap_or_default()
}

/// The pre-cache beam search: a full-sequence forward per live beam per step.
/// Reference implementation for the differential suite and the
/// non-incremental fallback.
pub fn beam_search_uncached(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    prompt: &[usize],
    max_new: usize,
    beam_width: usize,
    eos: Option<usize>,
) -> Vec<usize> {
    assert!(beam_width >= 1, "beam width must be at least 1");
    #[derive(Clone)]
    struct Beam {
        tokens: Vec<usize>,
        score: f32,
        done: bool,
    }
    let mut beams = vec![Beam {
        tokens: Vec::new(),
        score: 0.0,
        done: false,
    }];
    for _ in 0..max_new {
        if beams.iter().all(|b| b.done) {
            break;
        }
        let mut candidates: Vec<Beam> = Vec::new();
        for beam in &beams {
            if beam.done {
                candidates.push(beam.clone());
                continue;
            }
            let mut input = prompt.to_vec();
            input.extend(&beam.tokens);
            if input.len() >= model.config().max_seq {
                let mut b = beam.clone();
                b.done = true;
                candidates.push(b);
                continue;
            }
            let mut tape = Tape::new();
            let logits = model.forward(&input, hook, &mut tape);
            let v = tape.value(logits);
            let last = kernels::log_softmax_rows(&infuserki_tensor::Matrix::row_vec(
                v.row(v.rows() - 1).to_vec(),
            ));
            // Top beam_width expansions of this beam.
            let mut idx: Vec<usize> = (0..last.cols()).collect();
            idx.sort_by(|&a, &b| last.get(0, b).total_cmp(&last.get(0, a)));
            for &tok in idx.iter().take(beam_width) {
                let mut b = beam.clone();
                b.score += last.get(0, tok);
                if Some(tok) == eos {
                    b.done = true;
                } else {
                    b.tokens.push(tok);
                }
                candidates.push(b);
            }
        }
        // Length-normalized pruning so longer beams are not starved.
        candidates.sort_by(|a, b| {
            let an = a.score / (a.tokens.len().max(1) as f32);
            let bn = b.score / (b.tokens.len().max(1) as f32);
            bn.total_cmp(&an)
        });
        candidates.truncate(beam_width);
        beams = candidates;
    }
    beams
        .into_iter()
        .max_by(|a, b| {
            let an = a.score / (a.tokens.len().max(1) as f32);
            let bn = b.score / (b.tokens.len().max(1) as f32);
            an.total_cmp(&bn)
        })
        .map(|b| b.tokens)
        .unwrap_or_default()
}

/// Top-k sampling: draws each next token from the renormalized top-`k`
/// distribution with `temperature` scaling. Deterministic given `rng`.
#[allow(clippy::too_many_arguments)]
pub fn sample_top_k(
    model: &TransformerLm,
    hook: &dyn LayerHook,
    prompt: &[usize],
    max_new: usize,
    k: usize,
    temperature: f32,
    eos: Option<usize>,
    rng: &mut impl rand::Rng,
) -> Vec<usize> {
    assert!(k >= 1, "k must be at least 1");
    assert!(temperature > 0.0, "temperature must be positive");
    let mut tokens = prompt.to_vec();
    let mut out = Vec::with_capacity(max_new);
    for _ in 0..max_new {
        if tokens.len() >= model.config().max_seq {
            break;
        }
        let mut tape = Tape::new();
        let logits = model.forward(&tokens, hook, &mut tape);
        let v = tape.value(logits);
        let mut last: Vec<f32> = v.row(v.rows() - 1).to_vec();
        for x in &mut last {
            *x /= temperature;
        }
        let mut idx: Vec<usize> = (0..last.len()).collect();
        idx.sort_by(|&a, &b| last[b].total_cmp(&last[a]));
        idx.truncate(k);
        let max = last[idx[0]];
        let weights: Vec<f32> = idx.iter().map(|&i| (last[i] - max).exp()).collect();
        let total: f32 = weights.iter().sum();
        let mut draw = rng.gen_range(0.0..total);
        let mut next = idx[0];
        for (pos, &w) in weights.iter().enumerate() {
            if draw < w {
                next = idx[pos];
                break;
            }
            draw -= w;
        }
        if Some(next) == eos {
            break;
        }
        out.push(next);
        tokens.push(next);
    }
    out
}

/// Index of the maximum element (first on ties).
pub fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in xs.iter().enumerate() {
        if v > best_v {
            best = i;
            best_v = v;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoHook;
    use crate::ModelConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn model() -> TransformerLm {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        TransformerLm::new(ModelConfig::tiny(30), &mut rng)
    }

    #[test]
    fn greedy_decode_emits_tokens() {
        let m = model();
        let out = greedy_decode(&m, &NoHook, &[1, 2], 5, None);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|&t| t < 30));
    }

    #[test]
    fn greedy_decode_is_deterministic() {
        let m = model();
        assert_eq!(
            greedy_decode(&m, &NoHook, &[3, 4], 4, None),
            greedy_decode(&m, &NoHook, &[3, 4], 4, None)
        );
    }

    #[test]
    fn greedy_decode_respects_eos() {
        let m = model();
        let free = greedy_decode(&m, &NoHook, &[1], 5, None);
        // Use the first generated token as EOS: generation must stop at zero.
        let stopped = greedy_decode(&m, &NoHook, &[1], 5, Some(free[0]));
        assert!(stopped.is_empty());
    }

    #[test]
    fn greedy_decode_respects_max_seq() {
        let m = model();
        let max = m.config().max_seq;
        let out = greedy_decode(&m, &NoHook, &[1], max * 2, None);
        assert!(out.len() < max);
    }

    #[test]
    fn score_options_orders_by_likelihood() {
        let m = model();
        let opts = vec![vec![5], vec![6], vec![7]];
        let scores = score_options(&m, &NoHook, &[1, 2], &opts);
        assert_eq!(scores.len(), 3);
        assert!(scores.iter().all(|s| s.is_finite() && *s < 0.0));
    }

    #[test]
    fn option_probabilities_sum_to_one() {
        let p = option_probabilities(&[-1.0, -2.0, -3.0, -4.0], &[1, 1, 2, 2]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(p[0] > p[1]);
    }

    #[test]
    fn beam_width_one_equals_greedy_prefix() {
        // With width 1 and no EOS, beam search follows the greedy path until
        // its length-normalized pruning stops extending; the emitted tokens
        // must be a prefix of the greedy decode.
        let m = model();
        let greedy = greedy_decode(&m, &NoHook, &[1, 2], 4, None);
        let beam = beam_search(&m, &NoHook, &[1, 2], 4, 1, None);
        assert!(!beam.is_empty());
        assert_eq!(&greedy[..beam.len()], &beam[..]);
    }

    #[test]
    fn beam_search_scores_at_least_greedy() {
        let m = model();
        let greedy = greedy_decode(&m, &NoHook, &[3], 3, None);
        let beam = beam_search(&m, &NoHook, &[3], 3, 3, None);
        let score = |seq: &[usize]| {
            if seq.is_empty() {
                return f32::NEG_INFINITY;
            }
            m.completion_logprob(&[3], seq, &NoHook) / seq.len() as f32
        };
        assert!(
            score(&beam) >= score(&greedy) - 1e-4,
            "beam {:.4} < greedy {:.4}",
            score(&beam),
            score(&greedy)
        );
    }

    #[test]
    fn top_k_sampling_is_seeded_and_bounded() {
        let m = model();
        let mut r1 = ChaCha8Rng::seed_from_u64(4);
        let mut r2 = ChaCha8Rng::seed_from_u64(4);
        let a = sample_top_k(&m, &NoHook, &[1], 5, 3, 1.0, None, &mut r1);
        let b = sample_top_k(&m, &NoHook, &[1], 5, 3, 1.0, None, &mut r2);
        assert_eq!(a, b);
        assert!(a.iter().all(|&t| t < 30));
    }

    #[test]
    fn top_k_one_is_greedy() {
        let m = model();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let sampled = sample_top_k(&m, &NoHook, &[2, 3], 4, 1, 1.0, None, &mut rng);
        let greedy = greedy_decode(&m, &NoHook, &[2, 3], 4, None);
        assert_eq!(sampled, greedy);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[-5.0]), 0);
    }
}
