//! AdamW optimizer with decoupled weight decay, global-norm gradient
//! clipping, and learning-rate schedules.

use std::collections::HashMap;

use infuserki_tensor::{Gradients, Matrix, Param, ParamId};

/// AdamW hyperparameters. The defaults match the paper's experimental
/// details (lr = 1e-4, AdamW; Loshchilov & Hutter 2018).
#[derive(Debug, Clone, Copy)]
pub struct AdamWConfig {
    /// Peak learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator epsilon.
    pub eps: f32,
    /// Decoupled weight decay (skipped for biases/gains by name suffix).
    pub weight_decay: f32,
    /// Global-norm clip threshold; `None` disables clipping.
    pub clip_norm: Option<f32>,
}

impl Default for AdamWConfig {
    fn default() -> Self {
        AdamWConfig {
            lr: 1e-4,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            clip_norm: Some(1.0),
        }
    }
}

struct Slot {
    m: Matrix,
    v: Matrix,
}

/// AdamW with per-parameter moment state keyed by [`ParamId`].
pub struct AdamW {
    cfg: AdamWConfig,
    slots: HashMap<ParamId, Slot>,
    step: u64,
    lr_scale: f32,
}

impl AdamW {
    /// New optimizer.
    pub fn new(cfg: AdamWConfig) -> Self {
        AdamW {
            cfg,
            slots: HashMap::new(),
            step: 0,
            lr_scale: 1.0,
        }
    }

    /// Current effective learning rate.
    pub fn effective_lr(&self) -> f32 {
        self.cfg.lr * self.lr_scale
    }

    /// Sets a multiplicative LR scale (used by schedules).
    pub fn set_lr_scale(&mut self, scale: f32) {
        self.lr_scale = scale.max(0.0);
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Applies one update. `visit` must yield every trainable parameter;
    /// parameters without a gradient entry are left untouched.
    ///
    /// Gradients should already be averaged over the batch; this method only
    /// applies clipping and the AdamW rule.
    pub fn step(&mut self, grads: &Gradients, visit: impl FnOnce(&mut dyn FnMut(&mut Param))) {
        self.step += 1;
        let clip_scale = match self.cfg.clip_norm {
            Some(c) => {
                let n = grads.global_norm();
                if n > c && n > 0.0 {
                    c / n
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        let lr = self.cfg.lr * self.lr_scale;
        let b1 = self.cfg.beta1;
        let b2 = self.cfg.beta2;
        let bc1 = 1.0 - b1.powi(self.step as i32);
        let bc2 = 1.0 - b2.powi(self.step as i32);
        let eps = self.cfg.eps;
        let wd = self.cfg.weight_decay;
        let slots = &mut self.slots;

        visit(&mut |p: &mut Param| {
            let Some(g) = grads.get(p.id()) else {
                return;
            };
            let (rows, cols) = p.data().shape();
            let slot = slots.entry(p.id()).or_insert_with(|| Slot {
                m: Matrix::zeros(rows, cols),
                v: Matrix::zeros(rows, cols),
            });
            // Decay weights only (not norm gains / biases, identified by name).
            let decay = if is_decayable(p.name()) { wd } else { 0.0 };
            let data = p.data_mut();
            for i in 0..data.len() {
                let gi = g.data()[i] * clip_scale;
                let m = &mut slot.m.data_mut()[i];
                let v = &mut slot.v.data_mut()[i];
                *m = b1 * *m + (1.0 - b1) * gi;
                *v = b2 * *v + (1.0 - b2) * gi * gi;
                let mhat = *m / bc1;
                let vhat = *v / bc2;
                let x = &mut data.data_mut()[i];
                *x -= lr * (mhat / (vhat.sqrt() + eps) + decay * *x);
            }
        });
    }
}

fn is_decayable(name: &str) -> bool {
    // Biases and LayerNorm gains end with ".b" or ".g"; embedding tables and
    // projection weights decay.
    !(name.ends_with(".b") || name.ends_with(".g"))
}

/// Cosine decay from 1.0 to `floor` over `total_steps`, with `warmup` linear
/// warm-up steps. Returns the LR scale for step `step` (0-based).
pub fn cosine_schedule(step: u64, total_steps: u64, warmup: u64, floor: f32) -> f32 {
    if total_steps == 0 {
        return 1.0;
    }
    if step < warmup {
        return (step + 1) as f32 / warmup.max(1) as f32;
    }
    let t = (step - warmup) as f32 / (total_steps.saturating_sub(warmup)).max(1) as f32;
    let t = t.clamp(0.0, 1.0);
    floor + (1.0 - floor) * 0.5 * (1.0 + (std::f32::consts::PI * t).cos())
}

#[cfg(test)]
mod tests {
    use super::*;
    use infuserki_tensor::Tape;

    fn quad_grad(p: &Param) -> Gradients {
        // loss = 0.5 * x^2 → grad = x
        let mut t = Tape::new();
        let x = t.param(p);
        let sq = t.mul(x, x);
        let half = t.scale(sq, 0.5);
        let m = t.mean_rows(half);
        let ones = t.leaf(Matrix::from_vec(1, 1, vec![1.0]));
        let loss = t.matmul(m, ones);
        t.backward(loss);
        t.grads()
    }

    #[test]
    fn adamw_decreases_quadratic() {
        let mut p = Param::new("x.w", Matrix::scalar(5.0));
        let mut opt = AdamW::new(AdamWConfig {
            lr: 0.1,
            weight_decay: 0.0,
            clip_norm: None,
            ..AdamWConfig::default()
        });
        for _ in 0..200 {
            let g = quad_grad(&p);
            opt.step(&g, |f| f(&mut p));
        }
        assert!(
            p.data().scalar_value().abs() < 0.5,
            "{}",
            p.data().scalar_value()
        );
    }

    #[test]
    fn weight_decay_skips_biases() {
        let mut w = Param::new("l.w", Matrix::scalar(1.0));
        let mut b = Param::new("l.b", Matrix::scalar(1.0));
        let mut opt = AdamW::new(AdamWConfig {
            lr: 0.01,
            weight_decay: 0.5,
            clip_norm: None,
            ..AdamWConfig::default()
        });
        // Zero gradient for both: only decay moves values.
        let mut g = Gradients::new();
        g.add(w.id(), Matrix::scalar(0.0));
        g.add(b.id(), Matrix::scalar(0.0));
        opt.step(&g, |f| {
            f(&mut w);
            f(&mut b);
        });
        assert!(w.data().scalar_value() < 1.0);
        assert_eq!(b.data().scalar_value(), 1.0);
    }

    #[test]
    fn clip_limits_update_size() {
        let mut p = Param::new("x.w", Matrix::scalar(0.0));
        let mut opt = AdamW::new(AdamWConfig {
            lr: 1.0,
            weight_decay: 0.0,
            clip_norm: Some(1.0),
            ..AdamWConfig::default()
        });
        let mut g = Gradients::new();
        g.add(p.id(), Matrix::scalar(1000.0));
        opt.step(&g, |f| f(&mut p));
        // After clipping, first Adam step magnitude ≈ lr regardless of raw grad.
        assert!(p.data().scalar_value().abs() < 1.5);
    }

    #[test]
    fn untracked_params_untouched() {
        let mut p = Param::new("x.w", Matrix::scalar(3.0));
        let mut opt = AdamW::new(AdamWConfig::default());
        let g = Gradients::new();
        opt.step(&g, |f| f(&mut p));
        assert_eq!(p.data().scalar_value(), 3.0);
    }

    #[test]
    fn cosine_schedule_shape() {
        assert!((cosine_schedule(0, 100, 10, 0.1) - 0.1).abs() < 1e-6); // warmup start
        assert!((cosine_schedule(9, 100, 10, 0.1) - 1.0).abs() < 1e-6); // warmup end
        let mid = cosine_schedule(55, 100, 10, 0.1);
        assert!(mid < 1.0 && mid > 0.1);
        assert!((cosine_schedule(100, 100, 10, 0.1) - 0.1).abs() < 1e-5);
    }

    #[test]
    fn lr_scale_applies() {
        let mut opt = AdamW::new(AdamWConfig {
            lr: 0.2,
            ..AdamWConfig::default()
        });
        opt.set_lr_scale(0.5);
        assert!((opt.effective_lr() - 0.1).abs() < 1e-7);
    }
}
