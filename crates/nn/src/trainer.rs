//! Generic mini-batch training loop with data-parallel gradient accumulation.
//!
//! The same loop drives base-model pre-training, InfuserKI's three phases and
//! every baseline: a [`Trainable`] supplies per-sample scalar losses on fresh
//! tapes and exposes its trainable parameters; the loop shuffles, batches,
//! accumulates gradients (in parallel with rayon — each sample gets its own
//! tape, and [`infuserki_tensor::Gradients`] merge by parameter id), and
//! applies AdamW.

use infuserki_obs as obs;
use infuserki_tensor::op::IGNORE_INDEX;
use infuserki_tensor::{Gradients, NodeId, Param, Tape};
use rand::seq::SliceRandom;
use rand::Rng;
use rayon::prelude::*;

use crate::optim::AdamW;

/// Per-step telemetry into the global registry, namespaced by the current
/// [`obs::phase`] label — `train.qa.step_ms` while the QA phase runs,
/// `train.step_ms` outside any phase. The post-scale gradient norm is only
/// computed (an extra pass over every gradient) while tracing is enabled.
fn record_step(loss: f32, grads: &Gradients, elapsed: std::time::Duration) {
    let phase = obs::phase();
    let prefix = if phase.is_empty() {
        "train".to_string()
    } else {
        format!("train.{phase}")
    };
    let g = obs::global();
    g.counter(format!("{prefix}.steps").as_str()).inc();
    g.histogram(format!("{prefix}.step_ms").as_str())
        .record_duration(elapsed);
    g.histogram_with(format!("{prefix}.loss").as_str(), || {
        obs::Histogram::exponential(1e-4, 2.0, 30)
    })
    .record(loss as f64);
    if obs::enabled() {
        g.histogram_with(format!("{prefix}.grad_norm").as_str(), || {
            obs::Histogram::exponential(1e-4, 2.0, 30)
        })
        .record(grads.global_norm() as f64);
    }
}

/// A model (or model + patch-module combination) that can be trained on
/// samples of type `Sample`.
pub trait Trainable: Sync {
    /// The sample type consumed by [`loss`](Trainable::loss).
    type Sample: Sync;

    /// Builds the scalar loss node for one sample on `tape`.
    fn loss(&self, sample: &Self::Sample, tape: &mut Tape) -> NodeId;

    /// Visits every parameter the optimizer may update. Frozen base-model
    /// parameters are simply not visited.
    fn visit_trainable(&mut self, f: &mut dyn FnMut(&mut Param));
}

/// A plain next-token-prediction sample: aligned `tokens`/`targets` with
/// [`IGNORE_INDEX`] masking prompt positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LmSample {
    /// Input token ids.
    pub tokens: Vec<usize>,
    /// Per-position next-token targets.
    pub targets: Vec<usize>,
}

impl LmSample {
    /// Builds a teacher-forced sample from prompt + completion.
    pub fn from_completion(prompt: &[usize], completion: &[usize]) -> Self {
        let (tokens, targets) = crate::model::completion_sample(prompt, completion);
        LmSample { tokens, targets }
    }

    /// Builds a plain LM sample where every position predicts its successor
    /// (used for knowledge-statement NTL training, Eq. 10).
    pub fn from_sequence(tokens: &[usize]) -> Self {
        assert!(tokens.len() >= 2, "from_sequence: need at least 2 tokens");
        let mut targets: Vec<usize> = tokens[1..].to_vec();
        targets.push(IGNORE_INDEX);
        LmSample {
            tokens: tokens.to_vec(),
            targets,
        }
    }

    /// Number of supervised positions.
    pub fn supervised_len(&self) -> usize {
        self.targets.iter().filter(|&&t| t != IGNORE_INDEX).count()
    }
}

/// Runs one epoch over `samples`: shuffle, batch, accumulate, step.
/// Returns the mean per-sample loss.
pub fn train_epoch<T: Trainable>(
    model: &mut T,
    samples: &[T::Sample],
    batch_size: usize,
    opt: &mut AdamW,
    rng: &mut impl Rng,
) -> f32 {
    assert!(batch_size > 0, "train_epoch: batch_size must be positive");
    let mut order: Vec<usize> = (0..samples.len()).collect();
    order.shuffle(rng);
    let mut total_loss = 0.0f64;
    let mut count = 0usize;
    for chunk in order.chunks(batch_size) {
        let _sp = obs::enabled().then(|| obs::span("train.step"));
        let t0 = std::time::Instant::now();
        let (loss_sum, mut grads) = compute_batch_grads(model, samples, chunk);
        grads.scale(1.0 / chunk.len() as f32);
        opt.step(&grads, |f| model.visit_trainable(f));
        record_step(loss_sum / chunk.len() as f32, &grads, t0.elapsed());
        total_loss += loss_sum as f64;
        count += chunk.len();
    }
    if count == 0 {
        0.0
    } else {
        (total_loss / count as f64) as f32
    }
}

/// Computes summed loss and accumulated gradients for one batch without
/// stepping — exposed for tests and custom loops.
///
/// Per-sample losses and gradients are computed in parallel but reduced
/// sequentially in index order, with the loss summed in f64 — the result is
/// identical at any thread count, so a training run replays bit-for-bit
/// regardless of `INFUSERKI_THREADS`.
pub fn compute_batch_grads<T: Trainable>(
    model: &T,
    samples: &[T::Sample],
    indices: &[usize],
) -> (f32, Gradients) {
    let per: Vec<(f32, Gradients)> = indices
        .par_iter()
        .map(|&i| {
            let mut tape = Tape::new();
            let loss = model.loss(&samples[i], &mut tape);
            let lv = tape.value(loss).scalar_value();
            tape.backward(loss);
            (lv, tape.grads())
        })
        .collect();
    let mut total = 0.0f64;
    let mut grads = Gradients::new();
    for (lv, g) in per {
        total += lv as f64;
        grads = grads.merge(g);
    }
    (total as f32, grads)
}

/// Mean loss over samples without updating anything (validation).
///
/// Like [`compute_batch_grads`], the reduction is index-ordered and
/// accumulated in f64, so the reported loss does not depend on how the
/// parallel map interleaves.
pub fn eval_loss<T: Trainable>(model: &T, samples: &[T::Sample]) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    let per: Vec<f32> = samples
        .par_iter()
        .map(|s| {
            let mut tape = Tape::new();
            let loss = model.loss(s, &mut tape);
            tape.value(loss).scalar_value()
        })
        .collect();
    let total: f64 = per.iter().map(|&l| l as f64).sum();
    (total / samples.len() as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoHook;
    use crate::layers::Module;
    use crate::optim::AdamWConfig;
    use crate::{ModelConfig, TransformerLm};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    struct FullModel(TransformerLm);

    impl Trainable for FullModel {
        type Sample = LmSample;
        fn loss(&self, s: &LmSample, tape: &mut Tape) -> NodeId {
            self.0.lm_loss(&s.tokens, &s.targets, &NoHook, tape)
        }
        fn visit_trainable(&mut self, f: &mut dyn FnMut(&mut Param)) {
            self.0.visit_mut(f);
        }
    }

    #[test]
    fn lm_sample_constructors() {
        let s = LmSample::from_sequence(&[1, 2, 3]);
        assert_eq!(s.tokens, vec![1, 2, 3]);
        assert_eq!(s.targets[0], 2);
        assert_eq!(s.targets[1], 3);
        assert_eq!(s.targets[2], IGNORE_INDEX);
        assert_eq!(s.supervised_len(), 2);

        let c = LmSample::from_completion(&[1, 2], &[3, 4]);
        assert_eq!(c.tokens, vec![1, 2, 3]);
        assert_eq!(c.supervised_len(), 2);
    }

    #[test]
    fn training_reduces_loss_on_memorization_task() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let lm = TransformerLm::new(ModelConfig::tiny(20), &mut rng);
        let mut model = FullModel(lm);
        // Memorize: prompt [5] → completion [7, 9]
        let samples = vec![LmSample::from_completion(&[5], &[7, 9]); 4];
        let before = eval_loss(&model, &samples);
        let mut opt = AdamW::new(AdamWConfig {
            lr: 3e-3,
            ..AdamWConfig::default()
        });
        for _ in 0..30 {
            train_epoch(&mut model, &samples, 4, &mut opt, &mut rng);
        }
        let after = eval_loss(&model, &samples);
        assert!(
            after < before * 0.5,
            "loss should drop: before {before}, after {after}"
        );
    }

    #[test]
    fn batch_grads_sum_over_samples() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let lm = TransformerLm::new(ModelConfig::tiny(20), &mut rng);
        let model = FullModel(lm);
        let samples = vec![
            LmSample::from_completion(&[1], &[2]),
            LmSample::from_completion(&[1], &[2]),
        ];
        let (l1, g1) = compute_batch_grads(&model, &samples, &[0]);
        let (l2, g2) = compute_batch_grads(&model, &samples, &[0, 1]);
        assert!((l2 - 2.0 * l1).abs() < 1e-4);
        // Identical samples → doubled gradients.
        for (id, g) in g1.iter() {
            let gg = g2.get(*id).unwrap();
            let diff = g
                .data()
                .iter()
                .zip(gg.data())
                .map(|(a, b)| (2.0 * a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(diff < 1e-4, "diff {diff}");
        }
    }

    #[test]
    fn eval_loss_empty_is_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let lm = TransformerLm::new(ModelConfig::tiny(20), &mut rng);
        let model = FullModel(lm);
        assert_eq!(eval_loss(&model, &[]), 0.0);
    }
}
