//! Layer hook points — the extension mechanism every knowledge-integration
//! method plugs into.
//!
//! The paper patches a *frozen* LLaMa-2 with extra modules at various
//! positions: parallel FFN adapters (InfuserKI, CALINET), extra FFN neurons
//! (T-Patcher), low-rank attention deltas (LoRA/QLoRA) and prepended
//! key/value prefixes (Prefix Tuning). [`LayerHook`] exposes exactly those
//! interception points on [`crate::TransformerLm`]; the base forward pass is
//! method-agnostic.

use infuserki_tensor::{Matrix, NodeId, SeqBatch, Tape};

/// Per-forward observations and cross-layer hook state.
///
/// The trace doubles as (a) the probe surface for the paper's analyses
/// (Fig. 1 hidden states, Fig. 6 infusing scores) and (b) the carrier of the
/// InfuserKI adapter's cross-layer accumulator `H_A^{l-1}` (Eq. 1), which must
/// flow from one layer's hook invocation to the next within a single forward.
#[derive(Default)]
pub struct ForwardTrace {
    /// `H_P^l`: the input of each layer's FFN sublayer (post-LayerNorm).
    pub ffn_inputs: Vec<NodeId>,
    /// The raw FFN output of each layer (before hooks).
    pub ffn_outputs: Vec<NodeId>,
    /// Each layer's block output hidden state (after both residuals).
    pub block_outputs: Vec<NodeId>,
    /// Cross-layer adapter accumulator `H_A^{l-1}` (InfuserKI Eq. 1).
    pub adapter_carry: Option<NodeId>,
    /// `(layer, H_A^l)` adapter outputs, for RC-phase entity pooling.
    pub adapter_outputs: Vec<(usize, NodeId)>,
    /// `(layer, r^l)` infusing-score nodes, for the Fig. 6 probe.
    pub gate_scores: Vec<(usize, NodeId)>,
    /// `(layer, logit)` pre-sigmoid infuser outputs, for the BCE infuser-
    /// tuning phase (Eq. 5).
    pub gate_logits: Vec<(usize, NodeId)>,
}

impl ForwardTrace {
    /// A fresh, empty trace.
    pub fn new() -> Self {
        ForwardTrace::default()
    }

    /// The adapter output recorded at `layer`, if any.
    pub fn adapter_output_at(&self, layer: usize) -> Option<NodeId> {
        self.adapter_outputs
            .iter()
            .find(|(l, _)| *l == layer)
            .map(|(_, n)| *n)
    }

    /// The last recorded adapter output (`H_A^L` in Eq. 9's pooling).
    pub fn last_adapter_output(&self) -> Option<NodeId> {
        self.adapter_outputs.last().map(|(_, n)| *n)
    }
}

/// Persistent, forkable hook state carried by a KV cache across incremental
/// forward chunks.
///
/// Hooks whose tape-free path needs memory between chunks (InfuserKI's
/// cross-layer adapter carry and cumulative gate statistics) store it here;
/// the cache clones it on [`crate::KvCache::fork`] so shared-prefix decoding
/// branches evolve independently.
pub trait HookState: Send {
    /// Clones the state for a cache fork.
    fn clone_box(&self) -> Box<dyn HookState>;

    /// Downcast access for the owning hook's `infer_*` overrides.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Called at the start of every incremental chunk. Per-forward state
    /// (like the adapter carry, which flows across *layers*, not tokens)
    /// resets here; per-token state (cumulative gate sums) persists.
    fn begin_chunk(&mut self) {}
}

impl Clone for Box<dyn HookState> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Interception points on the transformer forward pass.
///
/// All methods default to "no change", so the unit struct [`NoHook`] runs the
/// vanilla model. Implementations receive the tape to record their own
/// (trainable-parameter) subgraphs; the trace carries per-forward state.
///
/// The `infer_*` family mirrors the tape methods on plain [`Matrix`] values
/// for the KV-cached inference engine. The defaults emulate the tape hook on
/// a throwaway scratch tape, which is bitwise-correct for every row-local,
/// stateless hook (LoRA deltas, prefix K/V, CALINET/T-Patcher corrections);
/// hooks with cross-layer or cross-chunk state override them natively
/// (InfuserKI) or opt out of incremental decoding entirely
/// ([`LayerHook::supports_incremental`], GRACE).
///
/// The `infer_*_batch` family extends the sublayer-output hooks to ragged
/// batches: the input/output matrices pack all sequences row-wise per
/// [`SeqBatch`], and `states` holds one entry per sequence. The defaults
/// slice per sequence and delegate to the single-sequence methods — correct
/// (and bitwise-equal to the looped single path) for *any* hook; stateful
/// hooks may override with a packed implementation (InfuserKI does, fusing
/// its adapter/infuser matmuls across the batch while keeping carry and gate
/// statistics strictly per-sequence).
///
/// Batched contract for the *projection* hooks (`infer_attn_q_delta`,
/// `infer_attn_v_delta`): the batched attention path applies them to the
/// packed `[total, d]` chunk directly, so they must be row-local — output
/// row `i` may depend only on input row `i` (true of every LoRA-style
/// delta). Hooks needing per-sequence projection context must override the
/// `_batch` output hooks instead.
pub trait LayerHook: Sync {
    /// Additive delta to the attention **query** projection output at
    /// `layer` (`x` is the attention sublayer input, post-LN). LoRA-style.
    fn attn_q_delta(&self, _layer: usize, _x: NodeId, _tape: &mut Tape) -> Option<NodeId> {
        None
    }

    /// Additive delta to the attention **value** projection output.
    fn attn_v_delta(&self, _layer: usize, _x: NodeId, _tape: &mut Tape) -> Option<NodeId> {
        None
    }

    /// Learnable key/value rows `([p, d_model], [p, d_model])` prepended to
    /// attention at `layer` (prefix tuning). Rows are split per-head by the
    /// attention module.
    fn prefix_kv(&self, _layer: usize, _tape: &mut Tape) -> Option<(NodeId, NodeId)> {
        None
    }

    /// Rewrites the attention sublayer output (pre-residual). Used by the
    /// Fig. 5 "attention placement" ablation of the knowledge adapters.
    fn attn_output(
        &self,
        _layer: usize,
        _attn_in: NodeId,
        attn_out: NodeId,
        _tape: &mut Tape,
        _trace: &mut ForwardTrace,
    ) -> NodeId {
        attn_out
    }

    /// Rewrites the FFN sublayer output (pre-residual). `ffn_in` is `H_P^l`,
    /// `ffn_out` is `FFN(H_P^l)`; InfuserKI returns
    /// `r^l · H_A^l + FFN(H_P^l)` (Eq. 6), CALINET/T-Patcher add their own
    /// corrections here.
    fn ffn_output(
        &self,
        _layer: usize,
        _ffn_in: NodeId,
        ffn_out: NodeId,
        _tape: &mut Tape,
        _trace: &mut ForwardTrace,
    ) -> NodeId {
        ffn_out
    }

    /// Whether this hook can run under the KV-cached incremental engine.
    /// Hooks whose output at a position depends on *future* or full-sequence
    /// statistics (GRACE's ε-ball lookup over the sequence mean) return
    /// `false`; cached samplers then fall back to full recomputation.
    fn supports_incremental(&self) -> bool {
        true
    }

    /// Fresh per-cache state for the `infer_*` path, if this hook needs any.
    fn make_state(&self) -> Option<Box<dyn HookState>> {
        None
    }

    /// Whether cached KV blocks *and hook-state snapshots* taken at a token
    /// boundary may be adopted by a different request with the same token
    /// prefix (the serving prefix cache). Safe exactly when the per-sequence
    /// state after feeding a prefix is a pure function of that prefix — no
    /// dependence on wall clock, request identity, or cross-sequence
    /// statistics. Stateless hooks are trivially safe; stateful hooks must
    /// opt in explicitly after checking that rule (InfuserKI's cross-layer
    /// carry qualifies: the per-chunk carry resets at `begin_chunk` and the
    /// cumulative gate statistics are prefix-determined). When this returns
    /// `false` the scheduler disables cross-request sharing rather than risk
    /// divergence.
    fn prefix_cache_safe(&self) -> bool {
        self.make_state().is_none()
    }

    /// Tape-free counterpart of [`LayerHook::attn_q_delta`].
    fn infer_attn_q_delta(&self, layer: usize, x: &Matrix) -> Option<Matrix> {
        let mut tape = Tape::new();
        let xn = tape.leaf(x.clone());
        let d = self.attn_q_delta(layer, xn, &mut tape)?;
        Some(tape.value(d).clone())
    }

    /// Tape-free counterpart of [`LayerHook::attn_v_delta`].
    fn infer_attn_v_delta(&self, layer: usize, x: &Matrix) -> Option<Matrix> {
        let mut tape = Tape::new();
        let xn = tape.leaf(x.clone());
        let d = self.attn_v_delta(layer, xn, &mut tape)?;
        Some(tape.value(d).clone())
    }

    /// Tape-free counterpart of [`LayerHook::prefix_kv`].
    fn infer_prefix_kv(&self, layer: usize) -> Option<(Matrix, Matrix)> {
        let mut tape = Tape::new();
        let (k, v) = self.prefix_kv(layer, &mut tape)?;
        Some((tape.value(k).clone(), tape.value(v).clone()))
    }

    /// Tape-free counterpart of [`LayerHook::attn_output`]. `state` is the
    /// cache's hook state (if [`LayerHook::make_state`] provided one).
    fn infer_attn_output(
        &self,
        layer: usize,
        attn_in: &Matrix,
        attn_out: Matrix,
        _state: &mut Option<Box<dyn HookState>>,
    ) -> Matrix {
        let mut tape = Tape::new();
        let mut trace = ForwardTrace::new();
        let i = tape.leaf(attn_in.clone());
        let o = tape.leaf(attn_out);
        let r = self.attn_output(layer, i, o, &mut tape, &mut trace);
        tape.value(r).clone()
    }

    /// Tape-free counterpart of [`LayerHook::ffn_output`]. `state` is the
    /// cache's hook state (if [`LayerHook::make_state`] provided one).
    fn infer_ffn_output(
        &self,
        layer: usize,
        ffn_in: &Matrix,
        ffn_out: Matrix,
        _state: &mut Option<Box<dyn HookState>>,
    ) -> Matrix {
        let mut tape = Tape::new();
        let mut trace = ForwardTrace::new();
        let i = tape.leaf(ffn_in.clone());
        let o = tape.leaf(ffn_out);
        let r = self.ffn_output(layer, i, o, &mut tape, &mut trace);
        tape.value(r).clone()
    }

    /// Batched counterpart of [`LayerHook::infer_attn_output`] over a packed
    /// ragged batch. Default: slice per sequence and delegate.
    fn infer_attn_output_batch(
        &self,
        layer: usize,
        attn_in: &Matrix,
        attn_out: Matrix,
        batch: &SeqBatch,
        states: &mut [Option<Box<dyn HookState>>],
    ) -> Matrix {
        debug_assert_eq!(batch.n_seqs(), states.len());
        if batch.n_seqs() == 1 {
            return self.infer_attn_output(layer, attn_in, attn_out, &mut states[0]);
        }
        let mut out = attn_out;
        for (i, r) in batch.ranges().enumerate() {
            let sub_in = attn_in.slice_rows(r.start, r.end);
            let sub_out = out.slice_rows(r.start, r.end);
            let res = self.infer_attn_output(layer, &sub_in, sub_out, &mut states[i]);
            out.copy_rows_from(r.start, &res);
        }
        out
    }

    /// Batched counterpart of [`LayerHook::infer_ffn_output`] over a packed
    /// ragged batch. Default: slice per sequence and delegate.
    fn infer_ffn_output_batch(
        &self,
        layer: usize,
        ffn_in: &Matrix,
        ffn_out: Matrix,
        batch: &SeqBatch,
        states: &mut [Option<Box<dyn HookState>>],
    ) -> Matrix {
        debug_assert_eq!(batch.n_seqs(), states.len());
        if batch.n_seqs() == 1 {
            return self.infer_ffn_output(layer, ffn_in, ffn_out, &mut states[0]);
        }
        let mut out = ffn_out;
        for (i, r) in batch.ranges().enumerate() {
            let sub_in = ffn_in.slice_rows(r.start, r.end);
            let sub_out = out.slice_rows(r.start, r.end);
            let res = self.infer_ffn_output(layer, &sub_in, sub_out, &mut states[i]);
            out.copy_rows_from(r.start, &res);
        }
        out
    }
}

/// References forward every method to the referent. This must cover the
/// *entire* trait: relying on the default bodies here would silently replace
/// a hook's native overrides (e.g. [`NoHook`]'s identity fast paths or
/// InfuserKI's packed batch kernels) with the scratch-tape emulation,
/// breaking bitwise equality for stateful hooks. With this impl,
/// `&dyn LayerHook` is itself a `LayerHook`, which lets owners of a borrowed
/// hook re-share it behind `Arc` (the serving bundle registry does).
impl<H: LayerHook + ?Sized> LayerHook for &H {
    fn attn_q_delta(&self, layer: usize, x: NodeId, tape: &mut Tape) -> Option<NodeId> {
        (**self).attn_q_delta(layer, x, tape)
    }

    fn attn_v_delta(&self, layer: usize, x: NodeId, tape: &mut Tape) -> Option<NodeId> {
        (**self).attn_v_delta(layer, x, tape)
    }

    fn prefix_kv(&self, layer: usize, tape: &mut Tape) -> Option<(NodeId, NodeId)> {
        (**self).prefix_kv(layer, tape)
    }

    fn attn_output(
        &self,
        layer: usize,
        attn_in: NodeId,
        attn_out: NodeId,
        tape: &mut Tape,
        trace: &mut ForwardTrace,
    ) -> NodeId {
        (**self).attn_output(layer, attn_in, attn_out, tape, trace)
    }

    fn ffn_output(
        &self,
        layer: usize,
        ffn_in: NodeId,
        ffn_out: NodeId,
        tape: &mut Tape,
        trace: &mut ForwardTrace,
    ) -> NodeId {
        (**self).ffn_output(layer, ffn_in, ffn_out, tape, trace)
    }

    fn supports_incremental(&self) -> bool {
        (**self).supports_incremental()
    }

    fn make_state(&self) -> Option<Box<dyn HookState>> {
        (**self).make_state()
    }

    fn prefix_cache_safe(&self) -> bool {
        (**self).prefix_cache_safe()
    }

    fn infer_attn_q_delta(&self, layer: usize, x: &Matrix) -> Option<Matrix> {
        (**self).infer_attn_q_delta(layer, x)
    }

    fn infer_attn_v_delta(&self, layer: usize, x: &Matrix) -> Option<Matrix> {
        (**self).infer_attn_v_delta(layer, x)
    }

    fn infer_prefix_kv(&self, layer: usize) -> Option<(Matrix, Matrix)> {
        (**self).infer_prefix_kv(layer)
    }

    fn infer_attn_output(
        &self,
        layer: usize,
        attn_in: &Matrix,
        attn_out: Matrix,
        state: &mut Option<Box<dyn HookState>>,
    ) -> Matrix {
        (**self).infer_attn_output(layer, attn_in, attn_out, state)
    }

    fn infer_ffn_output(
        &self,
        layer: usize,
        ffn_in: &Matrix,
        ffn_out: Matrix,
        state: &mut Option<Box<dyn HookState>>,
    ) -> Matrix {
        (**self).infer_ffn_output(layer, ffn_in, ffn_out, state)
    }

    fn infer_attn_output_batch(
        &self,
        layer: usize,
        attn_in: &Matrix,
        attn_out: Matrix,
        batch: &SeqBatch,
        states: &mut [Option<Box<dyn HookState>>],
    ) -> Matrix {
        (**self).infer_attn_output_batch(layer, attn_in, attn_out, batch, states)
    }

    fn infer_ffn_output_batch(
        &self,
        layer: usize,
        ffn_in: &Matrix,
        ffn_out: Matrix,
        batch: &SeqBatch,
        states: &mut [Option<Box<dyn HookState>>],
    ) -> Matrix {
        (**self).infer_ffn_output_batch(layer, ffn_in, ffn_out, batch, states)
    }
}

/// The identity hook: runs the unmodified base model.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHook;

impl LayerHook for NoHook {
    // Identity fast paths: bit-identical to the scratch-tape defaults (a
    // tape leaf's value is the input matrix unchanged) but skip three
    // matrix clones per sublayer — the vanilla model's decode hot path.
    fn infer_attn_output(
        &self,
        _layer: usize,
        _attn_in: &Matrix,
        attn_out: Matrix,
        _state: &mut Option<Box<dyn HookState>>,
    ) -> Matrix {
        attn_out
    }

    fn infer_ffn_output(
        &self,
        _layer: usize,
        _ffn_in: &Matrix,
        ffn_out: Matrix,
        _state: &mut Option<Box<dyn HookState>>,
    ) -> Matrix {
        ffn_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infuserki_tensor::Matrix;

    #[test]
    fn nohook_defaults_are_identity() {
        let mut tape = Tape::new();
        let mut trace = ForwardTrace::new();
        let x = tape.leaf(Matrix::zeros(2, 4));
        let y = tape.leaf(Matrix::zeros(2, 4));
        let h = NoHook;
        assert!(h.attn_q_delta(0, x, &mut tape).is_none());
        assert!(h.prefix_kv(0, &mut tape).is_none());
        assert_eq!(h.ffn_output(0, x, y, &mut tape, &mut trace), y);
        assert_eq!(h.attn_output(0, x, y, &mut tape, &mut trace), y);
    }

    #[test]
    fn trace_adapter_lookup() {
        let mut tape = Tape::new();
        let a = tape.leaf(Matrix::scalar(0.0));
        let b = tape.leaf(Matrix::scalar(0.0));
        let mut trace = ForwardTrace::new();
        assert!(trace.last_adapter_output().is_none());
        trace.adapter_outputs.push((3, a));
        trace.adapter_outputs.push((4, b));
        assert_eq!(trace.adapter_output_at(3), Some(a));
        assert_eq!(trace.adapter_output_at(5), None);
        assert_eq!(trace.last_adapter_output(), Some(b));
    }
}
