//! Paged KV storage: a pool of fixed-size, ref-counted K/V row blocks.
//!
//! [`BlockPool`] owns every KV block in an engine instance. A block spans
//! `block_rows` token positions across *all* layers at once (`k[layer]` /
//! `v[layer]`, each `[block_rows, d_model]`), so one [`BlockId`] is the unit
//! of sharing, refcounting and budget accounting for a token range. Sequences
//! reference blocks through per-sequence tables ([`crate::KvCache`]); the
//! radix prefix index ([`crate::PrefixIndex`]) pins full blocks for reuse by
//! later requests with a matching token prefix.
//!
//! Sharing rules, enforced here:
//!
//! - a block with more than one reference is immutable — [`BlockPool::block_mut`]
//!   panics unless `refs == 1`, so every writer must copy-on-write first
//!   ([`BlockPool::copy_block`]);
//! - freed blocks keep their storage on a freelist and are handed back by
//!   [`BlockPool::alloc`] without reallocating (a decode step never touches
//!   the system allocator once the pool is warm); [`BlockPool::compact`]
//!   returns freelist storage to the allocator.
//!
//! The pool is shared across a scheduler's caches through [`PoolHandle`]
//! (`Arc<Mutex<_>>`); the engine locks it once per forward pass, so the
//! mutex is uncontended in practice.

use std::sync::{Arc, Mutex, MutexGuard};

use infuserki_tensor::Matrix;

/// Handle to one pooled KV block. Plain index; only meaningful together with
/// the pool that issued it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BlockId(u32);

impl BlockId {
    /// Raw slot index (stable for the block's lifetime).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One block's storage: per-layer K and V panels, each `[block_rows, d_model]`
/// with only the first `filled` rows valid (fill is tracked by the owning
/// sequence's token count, not here — every sequence sharing a block agrees
/// on its fill by construction).
pub struct BlockData {
    pub k: Vec<Matrix>,
    pub v: Vec<Matrix>,
}

struct Slot {
    refs: u32,
    /// `None` while the slot sits on the freelist *after* a [`BlockPool::compact`]
    /// dropped its storage; re-allocated lazily on reuse.
    data: Option<BlockData>,
}

/// Ref-counted pool of fixed-size KV blocks with freelist reuse.
pub struct BlockPool {
    n_layers: usize,
    d_model: usize,
    block_rows: usize,
    slots: Vec<Slot>,
    free: Vec<u32>,
    live_blocks: usize,
    peak_blocks: usize,
}

impl BlockPool {
    pub fn new(n_layers: usize, d_model: usize, block_rows: usize) -> Self {
        assert!(block_rows > 0, "BlockPool: block_rows must be nonzero");
        assert!(n_layers > 0, "BlockPool: need at least one layer");
        BlockPool {
            n_layers,
            d_model,
            block_rows,
            slots: Vec::new(),
            free: Vec::new(),
            live_blocks: 0,
            peak_blocks: 0,
        }
    }

    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    pub fn d_model(&self) -> usize {
        self.d_model
    }

    fn fresh_data(&self) -> BlockData {
        BlockData {
            k: (0..self.n_layers)
                .map(|_| Matrix::zeros(self.block_rows, self.d_model))
                .collect(),
            v: (0..self.n_layers)
                .map(|_| Matrix::zeros(self.block_rows, self.d_model))
                .collect(),
        }
    }

    /// Allocates a block with `refs == 1`, reusing freelist storage when
    /// available.
    pub fn alloc(&mut self) -> BlockId {
        let id = match self.free.pop() {
            Some(i) => i,
            None => {
                let i = u32::try_from(self.slots.len()).expect("BlockPool: slot overflow");
                self.slots.push(Slot {
                    refs: 0,
                    data: None,
                });
                i
            }
        };
        debug_assert_eq!(
            self.slots[id as usize].refs, 0,
            "alloc handed out a referenced block"
        );
        self.slots[id as usize].refs = 1;
        if self.slots[id as usize].data.is_none() {
            let data = self.fresh_data();
            self.slots[id as usize].data = Some(data);
        }
        self.live_blocks += 1;
        self.peak_blocks = self.peak_blocks.max(self.live_blocks);
        BlockId(id)
    }

    /// Adds a reference — how caches share a block on fork/gather and how
    /// the prefix index pins one.
    pub fn retain(&mut self, id: BlockId) {
        let slot = &mut self.slots[id.index()];
        assert!(slot.refs > 0, "retain of a freed block");
        slot.refs += 1;
    }

    /// Drops a reference; at zero the block goes back on the freelist (its
    /// storage is kept for reuse until [`BlockPool::compact`]).
    pub fn release(&mut self, id: BlockId) {
        let slot = &mut self.slots[id.index()];
        assert!(slot.refs > 0, "release of a freed block (double free)");
        slot.refs -= 1;
        if slot.refs == 0 {
            self.free.push(id.0);
            self.live_blocks -= 1;
        }
    }

    /// Current reference count (0 for freed slots).
    pub fn refs(&self, id: BlockId) -> usize {
        self.slots[id.index()].refs as usize
    }

    /// Read access to a live block's panels.
    pub fn block(&self, id: BlockId) -> &BlockData {
        let slot = &self.slots[id.index()];
        assert!(slot.refs > 0, "read of a freed block");
        slot.data.as_ref().expect("live block lost its storage")
    }

    /// Write access — exclusively-owned blocks only. Shared blocks are
    /// immutable by contract; writers copy-on-write via
    /// [`BlockPool::copy_block`] first.
    ///
    /// # Panics
    /// Panics if `refs != 1`.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BlockData {
        let slot = &mut self.slots[id.index()];
        assert!(
            slot.refs == 1,
            "mutable access to a block with {} references",
            slot.refs
        );
        slot.data.as_mut().expect("live block lost its storage")
    }

    /// Copy-on-write: allocates a fresh block and copies `filled` rows of
    /// every layer's K/V panel from `src`. The source's refcount is
    /// untouched — the caller swaps its table entry and releases its own
    /// reference.
    pub fn copy_block(&mut self, src: BlockId, filled: usize) -> BlockId {
        assert!(filled <= self.block_rows, "copy_block: fill out of range");
        assert!(self.refs(src) > 0, "copy_block: source is freed");
        let dst = self.alloc();
        if filled > 0 {
            // Split-borrow via index math: src and dst are distinct slots
            // (alloc never returns a live id).
            debug_assert_ne!(src, dst);
            let (s, d) = if src.index() < dst.index() {
                let (a, b) = self.slots.split_at_mut(dst.index());
                (&a[src.index()], &mut b[0])
            } else {
                let (a, b) = self.slots.split_at_mut(src.index());
                (&b[0], &mut a[dst.index()])
            };
            let sd = s.data.as_ref().expect("live block lost its storage");
            let dd = d.data.as_mut().expect("live block lost its storage");
            for l in 0..self.n_layers {
                dd.k[l].copy_rows_from(0, &sd.k[l].slice_rows(0, filled));
                dd.v[l].copy_rows_from(0, &sd.v[l].slice_rows(0, filled));
            }
        }
        dst
    }

    /// Blocks currently referenced at least once.
    pub fn live_blocks(&self) -> usize {
        self.live_blocks
    }

    /// High-water mark of [`BlockPool::live_blocks`].
    pub fn peak_blocks(&self) -> usize {
        self.peak_blocks
    }

    /// Token rows held by live blocks (capacity-granular: fill is tracked by
    /// owners).
    pub fn live_rows(&self) -> usize {
        self.live_blocks * self.block_rows
    }

    /// Rows available from the freelist without touching the system
    /// allocator (freed slots that still hold storage).
    pub fn free_rows(&self) -> usize {
        self.free
            .iter()
            .filter(|&&i| self.slots[i as usize].data.is_some())
            .count()
            * self.block_rows
    }

    /// Ensures at least `n` freelist blocks have storage ready, so a decode
    /// loop of known length never reallocates mid-flight.
    pub fn reserve_free_blocks(&mut self, n: usize) {
        for i in 0..self.free.len() {
            let idx = self.free[i] as usize;
            if self.slots[idx].data.is_none() {
                self.slots[idx].data = Some(self.fresh_data());
            }
        }
        while self.free.len() < n {
            let i = u32::try_from(self.slots.len()).expect("BlockPool: slot overflow");
            self.slots.push(Slot {
                refs: 0,
                data: Some(self.fresh_data()),
            });
            self.free.push(i);
        }
    }

    /// Returns freelist storage to the system allocator (live blocks are
    /// untouched).
    pub fn compact(&mut self) {
        for &i in &self.free {
            self.slots[i as usize].data = None;
        }
    }

    /// Rows the pool's allocations can hold without new system allocation —
    /// live blocks plus storage-bearing freelist blocks.
    pub fn allocated_rows(&self) -> usize {
        self.live_rows() + self.free_rows()
    }
}

/// Shared, lockable handle to a [`BlockPool`]. One pool per scheduler (all
/// its caches and the prefix index share blocks); standalone sampler entry
/// points get a private pool per cache.
#[derive(Clone)]
pub struct PoolHandle {
    inner: Arc<Mutex<BlockPool>>,
}

impl PoolHandle {
    pub fn new(n_layers: usize, d_model: usize, block_rows: usize) -> Self {
        PoolHandle {
            inner: Arc::new(Mutex::new(BlockPool::new(n_layers, d_model, block_rows))),
        }
    }

    /// Locks the pool. Poisoning is ignored: the pool's invariants are
    /// maintained per-operation, and cache `Drop` must be able to release
    /// blocks during unwinding.
    pub fn lock(&self) -> MutexGuard<'_, BlockPool> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Whether two handles refer to the same pool (block ids are only
    /// transferable between caches when this holds).
    pub fn same_pool(&self, other: &PoolHandle) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_reuses_freelist_storage() {
        let mut p = BlockPool::new(2, 4, 8);
        let a = p.alloc();
        let b = p.alloc();
        assert_eq!(p.live_blocks(), 2);
        assert_eq!(p.peak_blocks(), 2);
        p.release(a);
        assert_eq!(p.live_blocks(), 1);
        assert_eq!(p.free_rows(), 8);
        let c = p.alloc();
        assert_eq!(c, a, "freelist should hand the slot back");
        assert_eq!(p.live_blocks(), 2);
        assert_eq!(p.peak_blocks(), 2, "reuse does not raise the peak");
        p.release(b);
        p.release(c);
        assert_eq!(p.live_blocks(), 0);
    }

    #[test]
    fn shared_blocks_refuse_mutable_access() {
        let mut p = BlockPool::new(1, 4, 4);
        let a = p.alloc();
        p.retain(a);
        assert_eq!(p.refs(a), 2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = p.block_mut(a);
        }));
        assert!(caught.is_err(), "block_mut must panic on a shared block");
        p.release(a);
        p.block_mut(a).k[0].set(0, 0, 1.0);
        p.release(a);
    }

    #[test]
    fn copy_block_copies_filled_rows_only() {
        let mut p = BlockPool::new(2, 3, 4);
        let a = p.alloc();
        for l in 0..2 {
            let d = p.block_mut(a);
            d.k[l].set(0, 1, 5.0);
            d.v[l].set(1, 2, -3.0);
        }
        p.retain(a); // simulate a second owner forcing COW
        let b = p.copy_block(a, 2);
        assert_eq!(p.refs(a), 2, "copy_block leaves the source refcount alone");
        assert_eq!(p.refs(b), 1);
        for l in 0..2 {
            assert_eq!(p.block(b).k[l].get(0, 1), 5.0);
            assert_eq!(p.block(b).v[l].get(1, 2), -3.0);
        }
        p.release(a);
        p.release(a);
        p.release(b);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_release_panics() {
        let mut p = BlockPool::new(1, 2, 2);
        let a = p.alloc();
        p.release(a);
        p.release(a);
    }

    #[test]
    fn compact_drops_freelist_storage_and_reserve_restores_it() {
        let mut p = BlockPool::new(1, 4, 8);
        let a = p.alloc();
        let b = p.alloc();
        p.release(a);
        p.release(b);
        assert_eq!(p.free_rows(), 16);
        p.compact();
        assert_eq!(p.free_rows(), 0);
        assert_eq!(p.allocated_rows(), 0);
        p.reserve_free_blocks(3);
        assert_eq!(p.free_rows(), 24);
        let c = p.alloc();
        assert_eq!(p.block(c).k[0].rows(), 8, "reused slot has storage again");
        p.release(c);
    }
}
