//! Model hyperparameters.

use serde::{Deserialize, Serialize};

/// Architecture of the base transformer LM.
///
/// The default mirrors LLaMa-2-7B's *geometry* at a CPU-trainable scale:
/// 12 pre-LN decoder layers with causal multi-head attention, GELU FFNs,
/// learned positional embeddings, and a weight-tied LM head. The paper's
/// layer-indexed experiments (adapters in the last 30 of 32 layers, position
/// sweeps over thirds) are mapped onto this depth proportionally — see
/// `DESIGN.md` §4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Vocabulary size (set from the tokenizer).
    pub vocab_size: usize,
    /// Hidden width `d`.
    pub d_model: usize,
    /// Number of transformer layers `L`.
    pub n_layers: usize,
    /// Attention heads (must divide `d_model`).
    pub n_heads: usize,
    /// FFN inner width.
    pub d_ff: usize,
    /// Maximum sequence length (positional table size).
    pub max_seq: usize,
    /// LayerNorm epsilon.
    pub ln_eps: f32,
    /// Weight init standard deviation.
    pub init_std: f32,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            vocab_size: 2048,
            d_model: 64,
            n_layers: 12,
            n_heads: 4,
            d_ff: 192,
            max_seq: 96,
            ln_eps: 1e-5,
            init_std: 0.02,
        }
    }
}

impl ModelConfig {
    /// A very small configuration for unit tests.
    pub fn tiny(vocab_size: usize) -> Self {
        ModelConfig {
            vocab_size,
            d_model: 16,
            n_layers: 2,
            n_heads: 2,
            d_ff: 32,
            max_seq: 32,
            ..ModelConfig::default()
        }
    }

    /// Per-head width.
    pub fn head_dim(&self) -> usize {
        self.d_model / self.n_heads
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if !self.d_model.is_multiple_of(self.n_heads) {
            return Err(format!(
                "d_model {} not divisible by n_heads {}",
                self.d_model, self.n_heads
            ));
        }
        if self.vocab_size == 0 || self.n_layers == 0 || self.max_seq == 0 {
            return Err("zero-sized dimension".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(ModelConfig::default().validate().is_ok());
        assert_eq!(ModelConfig::default().head_dim(), 16);
    }

    #[test]
    fn rejects_indivisible_heads() {
        let c = ModelConfig {
            d_model: 10,
            n_heads: 3,
            ..ModelConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn tiny_is_valid() {
        assert!(ModelConfig::tiny(100).validate().is_ok());
    }

    #[test]
    fn serde_round_trip() {
        let c = ModelConfig::default();
        let s = serde_json::to_string(&c).unwrap();
        let back: ModelConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(back, c);
    }
}
