//! The base language model: a decoder-only transformer with a weight-tied LM
//! head and learned positional embeddings.

use std::fs;
use std::path::Path;

use infuserki_obs as obs;
use infuserki_tensor::op::IGNORE_INDEX;
use infuserki_tensor::{kernels, Matrix, NodeId, Param, QuantSpec, SeqBatch, Tape, TensorError};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::block::TransformerBlock;
use crate::block_alloc::PoolHandle;
use crate::hooks::{ForwardTrace, LayerHook};
use crate::kv_cache::KvCache;
use crate::layers::{Embedding, LayerNorm, Module};
use crate::ModelConfig;

/// Block size for caches created without an explicit pool (standalone
/// sampler / beam-search paths). Serving chooses its own via
/// `ServeConfig::block_rows`.
pub const DEFAULT_BLOCK_ROWS: usize = 32;

/// Cached global-registry handles for the incremental engine: every
/// prefill/decode funnels through [`TransformerLm::extend_cached_batch`],
/// so this is the one place engine latency and KV occupancy are measured.
struct EngineMetrics {
    prefill_ms: std::sync::Arc<obs::Histogram>,
    decode_ms: std::sync::Arc<obs::Histogram>,
    prefill_tokens: std::sync::Arc<obs::Counter>,
    decode_tokens: std::sync::Arc<obs::Counter>,
    /// Live K/V rows of the most recently advanced cache.
    kv_rows_live: std::sync::Arc<obs::Gauge>,
    /// High-water mark of `kv_rows_live` over the process lifetime.
    kv_rows_peak: std::sync::Arc<obs::Gauge>,
}

fn engine_metrics() -> &'static EngineMetrics {
    static M: std::sync::OnceLock<EngineMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        let g = obs::global();
        EngineMetrics {
            prefill_ms: g.histogram("engine.prefill_ms"),
            decode_ms: g.histogram("engine.decode_ms"),
            prefill_tokens: g.counter("engine.prefill_tokens"),
            decode_tokens: g.counter("engine.decode_tokens"),
            kv_rows_live: g.gauge("engine.kv_rows_live"),
            kv_rows_peak: g.gauge("engine.kv_rows_peak"),
        }
    })
}

/// Decoder-only transformer LM ("SmolLM" in the reproduction's DESIGN.md).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransformerLm {
    cfg: ModelConfig,
    tok_embed: Embedding,
    pos_embed: Embedding,
    blocks: Vec<TransformerBlock>,
    ln_f: LayerNorm,
}

impl TransformerLm {
    /// Builds a freshly initialized model.
    ///
    /// # Panics
    /// Panics if the config is invalid.
    pub fn new(cfg: ModelConfig, rng: &mut impl Rng) -> Self {
        cfg.validate().expect("invalid ModelConfig");
        let blocks = (0..cfg.n_layers)
            .map(|l| TransformerBlock::new(l, &cfg, rng))
            .collect();
        TransformerLm {
            tok_embed: Embedding::new("tok_embed", cfg.vocab_size, cfg.d_model, cfg.init_std, rng),
            pos_embed: Embedding::new("pos_embed", cfg.max_seq, cfg.d_model, cfg.init_std, rng),
            ln_f: LayerNorm::new("ln_f", cfg.d_model, cfg.ln_eps),
            blocks,
            cfg,
        }
    }

    /// The architecture config.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.cfg.n_layers
    }

    /// The blocks (read access for method wiring).
    pub fn blocks(&self) -> &[TransformerBlock] {
        &self.blocks
    }

    /// Mutable blocks (weight quantization for QLoRA).
    pub fn blocks_mut(&mut self) -> &mut [TransformerBlock] {
        &mut self.blocks
    }

    /// Full forward pass with hooks and trace capture.
    ///
    /// Returns the `[n, vocab]` logits node. `tokens` must be non-empty and
    /// no longer than `max_seq`.
    pub fn forward_traced(
        &self,
        tokens: &[usize],
        hook: &dyn LayerHook,
        tape: &mut Tape,
        trace: &mut ForwardTrace,
    ) -> NodeId {
        assert!(!tokens.is_empty(), "forward: empty token sequence");
        assert!(
            tokens.len() <= self.cfg.max_seq,
            "forward: sequence {} exceeds max_seq {}",
            tokens.len(),
            self.cfg.max_seq
        );
        let te = self.tok_embed.forward(tokens, tape);
        let positions: Vec<usize> = (0..tokens.len()).collect();
        let pe = self.pos_embed.forward(&positions, tape);
        let mut x = tape.add(te, pe);
        for block in &self.blocks {
            x = block.forward(x, hook, tape, trace);
        }
        let h = self.ln_f.forward(x, tape);
        // Weight-tied head: logits = h @ E^T.
        let e = tape.param(self.tok_embed.table());
        tape.matmul_bt(h, e)
    }

    /// Forward pass discarding the trace.
    pub fn forward(&self, tokens: &[usize], hook: &dyn LayerHook, tape: &mut Tape) -> NodeId {
        let mut trace = ForwardTrace::new();
        self.forward_traced(tokens, hook, tape, &mut trace)
    }

    /// Builds an empty KV cache for incremental decoding with `hook`.
    ///
    /// # Panics
    /// Panics if the hook does not support incremental decoding
    /// ([`LayerHook::supports_incremental`]); callers that may receive such
    /// hooks should check first and fall back to full recomputation.
    pub fn new_cache(&self, hook: &dyn LayerHook) -> KvCache {
        self.new_cache_batch(hook, 1)
    }

    /// Builds an empty KV cache over `n_seqs` independent sequences.
    ///
    /// # Panics
    /// Panics if the hook does not support incremental decoding (see
    /// [`Self::new_cache`]).
    pub fn new_cache_batch(&self, hook: &dyn LayerHook, n_seqs: usize) -> KvCache {
        self.new_cache_batch_in(hook, n_seqs, self.new_pool(DEFAULT_BLOCK_ROWS))
    }

    /// A fresh block pool sized for this model. A serving scheduler creates
    /// one pool and builds every cache over it so blocks (and therefore
    /// prefixes) can be shared across requests.
    pub fn new_pool(&self, block_rows: usize) -> PoolHandle {
        PoolHandle::new(self.cfg.n_layers, self.cfg.d_model, block_rows)
    }

    /// Builds an empty cache over an existing (shared) block pool — the
    /// serving path, where admission, MCQ fan-out and the prefix index all
    /// trade blocks through one pool.
    ///
    /// # Panics
    /// Panics if the hook does not support incremental decoding (see
    /// [`Self::new_cache`]).
    pub fn new_cache_in(&self, hook: &dyn LayerHook, pool: PoolHandle) -> KvCache {
        self.new_cache_batch_in(hook, 1, pool)
    }

    /// Batched form of [`Self::new_cache_in`].
    pub fn new_cache_batch_in(
        &self,
        hook: &dyn LayerHook,
        n_seqs: usize,
        pool: PoolHandle,
    ) -> KvCache {
        assert!(
            hook.supports_incremental(),
            "hook does not support KV-cached incremental decoding"
        );
        KvCache::new(self.cfg.n_layers, self.cfg.d_model, hook, n_seqs, pool)
    }

    /// Widest per-layer prefix-tuning K/V block `hook` prepends to a
    /// sequence's cache (0 for hooks without prefixes). Admission control
    /// adds this to a request's prompt + decode budget when charging it
    /// against a KV-row budget, since every cached sequence pays it.
    pub fn max_prefix_rows(&self, hook: &dyn LayerHook) -> usize {
        (0..self.cfg.n_layers)
            .filter_map(|l| hook.infer_prefix_kv(l).map(|(k, _)| k.rows()))
            .max()
            .unwrap_or(0)
    }

    /// Runs a chunk of `tokens` through the model incrementally, appending
    /// their K/V rows to `cache`. Returns the `[chunk, vocab]` logits of the
    /// new positions — bitwise identical (at one kernel thread) to the
    /// corresponding rows of a full [`Self::forward`] over the whole cached
    /// sequence. Batch-of-1 wrapper over [`Self::extend_cached_batch`].
    pub fn extend_cached(
        &self,
        tokens: &[usize],
        hook: &dyn LayerHook,
        cache: &mut KvCache,
    ) -> Matrix {
        assert_eq!(cache.n_seqs(), 1, "extend_cached on a batched cache");
        self.extend_cached_batch(&[tokens], hook, cache)
    }

    /// Advances every sequence of a batched cache by its own chunk
    /// (`chunks[i]` extends sequence `i`; chunks may have different lengths
    /// but must all be non-empty). Returns the packed
    /// `[sum(chunk lens), vocab]` logits of the new positions, laid out per
    /// `SeqBatch::from_lens(chunk lens)` — each sequence's rows bitwise
    /// identical (at one kernel thread) to extending it alone.
    pub fn extend_cached_batch<S: AsRef<[usize]>>(
        &self,
        chunks: &[S],
        hook: &dyn LayerHook,
        cache: &mut KvCache,
    ) -> Matrix {
        assert_eq!(
            chunks.len(),
            cache.n_seqs(),
            "extend_cached_batch: {} chunks for a {}-sequence cache",
            chunks.len(),
            cache.n_seqs()
        );
        assert!(
            chunks.iter().all(|c| !c.as_ref().is_empty()),
            "extend_cached: empty chunk"
        );
        let lens: Vec<usize> = chunks.iter().map(|c| c.as_ref().len()).collect();
        // One token per sequence = a decode step; anything longer is prefill.
        let is_decode = lens.iter().all(|&l| l == 1);
        let _sp = obs::enabled().then(|| {
            obs::span(if is_decode {
                "engine.decode_step"
            } else {
                "engine.prefill_chunk"
            })
        });
        let t0 = std::time::Instant::now();
        let batch = SeqBatch::from_lens(&lens);
        let mut ids = Vec::with_capacity(batch.total_rows());
        let mut positions = Vec::with_capacity(batch.total_rows());
        for (i, chunk) in chunks.iter().enumerate() {
            let chunk = chunk.as_ref();
            let start = cache.tokens_of(i);
            assert!(
                start + chunk.len() <= self.cfg.max_seq,
                "extend_cached: sequence {} exceeds max_seq {}",
                start + chunk.len(),
                self.cfg.max_seq
            );
            ids.extend_from_slice(chunk);
            positions.extend(start..start + chunk.len());
        }
        for s in cache.states.iter_mut().flatten() {
            s.begin_chunk();
        }
        let mut x = self.tok_embed.gather(&ids);
        x.add_assign(&self.pos_embed.gather(&positions));
        // Split the cache borrows: the layer loop reads the shared prefix
        // panels and block tables while the per-sequence hook states thread
        // through every sublayer call.
        let mut states = std::mem::take(&mut cache.states);
        let prefix = cache.prefix.clone();
        {
            // One pool lock for the whole forward: make every sequence's
            // append span writable (copy-on-write shared partial tails,
            // allocate fresh tail blocks), then run the layers.
            let pool_handle = cache.pool.clone();
            let mut pool = pool_handle.lock();
            for (seq, &len) in cache.seqs.iter_mut().zip(&lens) {
                seq.prepare_append(&mut pool, len);
            }
            for (l, block) in self.blocks.iter().enumerate() {
                x = block.forward_batch(
                    &x,
                    &batch,
                    hook,
                    &mut pool,
                    &cache.seqs,
                    &prefix[l],
                    &mut states,
                );
            }
        }
        cache.states = states;
        for (seq, len) in cache.seqs.iter_mut().zip(&lens) {
            seq.tokens += len;
        }
        let h = self.ln_f.apply(&x);
        let logits = kernels::matmul_bt(&h, self.tok_embed.table().data());
        let em = engine_metrics();
        let new_tokens: usize = lens.iter().sum();
        if is_decode {
            em.decode_ms.record_duration(t0.elapsed());
            em.decode_tokens.add(new_tokens as u64);
        } else {
            em.prefill_ms.record_duration(t0.elapsed());
            em.prefill_tokens.add(new_tokens as u64);
        }
        let rows = cache.rows_used() as i64;
        em.kv_rows_live.set(rows);
        em.kv_rows_peak.set_max(rows);
        logits
    }

    /// Prefills a fresh cache with `tokens` and returns it together with the
    /// prompt logits.
    pub fn prefill(&self, tokens: &[usize], hook: &dyn LayerHook) -> (KvCache, Matrix) {
        let mut cache = self.new_cache(hook);
        let logits = self.extend_cached(tokens, hook, &mut cache);
        (cache, logits)
    }

    /// Prefills a fresh batched cache with one prompt per sequence,
    /// returning it with the packed prompt logits (layout per
    /// `SeqBatch::from_lens(prompt lens)`).
    pub fn prefill_batch<S: AsRef<[usize]>>(
        &self,
        prompts: &[S],
        hook: &dyn LayerHook,
    ) -> (KvCache, Matrix) {
        let mut cache = self.new_cache_batch(hook, prompts.len());
        let logits = self.extend_cached_batch(prompts, hook, &mut cache);
        (cache, logits)
    }

    /// Decodes one token against the cache, returning its `[1, vocab]`
    /// logits row.
    pub fn decode_step(&self, token: usize, hook: &dyn LayerHook, cache: &mut KvCache) -> Matrix {
        self.extend_cached(&[token], hook, cache)
    }

    /// Decodes one token per sequence against a batched cache, returning the
    /// `[n_seqs, vocab]` logits (row `i` for sequence `i`).
    pub fn decode_step_batch(
        &self,
        tokens: &[usize],
        hook: &dyn LayerHook,
        cache: &mut KvCache,
    ) -> Matrix {
        let chunks: Vec<&[usize]> = tokens.iter().map(std::slice::from_ref).collect();
        self.extend_cached_batch(&chunks, hook, cache)
    }

    /// Tape-free full forward over several sequences at once: prefills a
    /// throwaway batched cache and returns the packed logits. The batched
    /// counterpart of evaluating [`Self::forward`] per sequence.
    pub fn forward_batch<S: AsRef<[usize]>>(
        &self,
        seqs: &[S],
        hook: &dyn LayerHook,
    ) -> (Matrix, SeqBatch) {
        let lens: Vec<usize> = seqs.iter().map(|s| s.as_ref().len()).collect();
        let (_, logits) = self.prefill_batch(seqs, hook);
        (logits, SeqBatch::from_lens(&lens))
    }

    /// Next-token cross-entropy over a sequence: position `i` predicts
    /// `targets[i]`; use [`IGNORE_INDEX`] to mask prompt positions.
    ///
    /// `targets.len()` must equal `tokens.len()`.
    pub fn lm_loss(
        &self,
        tokens: &[usize],
        targets: &[usize],
        hook: &dyn LayerHook,
        tape: &mut Tape,
    ) -> NodeId {
        assert_eq!(tokens.len(), targets.len(), "lm_loss: length mismatch");
        let logits = self.forward(tokens, hook, tape);
        tape.cross_entropy(logits, targets)
    }

    /// Convenience: teacher-forced loss where the model must produce
    /// `completion` after `prompt`. Builds the shifted target vector.
    pub fn completion_loss(
        &self,
        prompt: &[usize],
        completion: &[usize],
        hook: &dyn LayerHook,
        tape: &mut Tape,
    ) -> NodeId {
        let (tokens, targets) = completion_sample(prompt, completion);
        self.lm_loss(&tokens, &targets, hook, tape)
    }

    /// Log-probability (natural log) the model assigns to `completion`
    /// following `prompt`, summed over completion tokens. Used for MCQ option
    /// scoring.
    pub fn completion_logprob(
        &self,
        prompt: &[usize],
        completion: &[usize],
        hook: &dyn LayerHook,
    ) -> f32 {
        assert!(
            !completion.is_empty(),
            "completion_logprob: empty completion"
        );
        let mut tape = Tape::new();
        let mut tokens = prompt.to_vec();
        tokens.extend_from_slice(completion);
        // Drop the final token's prediction: nothing follows it.
        let input = &tokens[..tokens.len() - 1];
        let logits = self.forward(input, hook, &mut tape);
        self.sum_completion_logprob(&tape, logits, prompt.len(), completion)
    }

    fn sum_completion_logprob(
        &self,
        tape: &Tape,
        logits: NodeId,
        prompt_len: usize,
        completion: &[usize],
    ) -> f32 {
        let v = tape.value(logits);
        let lp = infuserki_tensor::kernels::log_softmax_rows(v);
        let mut total = 0.0;
        for (i, &tok) in completion.iter().enumerate() {
            // Row prompt_len-1+i predicts completion[i].
            let row = prompt_len - 1 + i;
            total += lp.get(row, tok);
        }
        total
    }

    /// Saves the model (config + all parameters) as JSON.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TensorError> {
        let json = serde_json::to_string(self).expect("model serialization cannot fail");
        if let Some(dir) = path.as_ref().parent() {
            fs::create_dir_all(dir)
                .map_err(|e| TensorError::Io(format!("create {}: {e}", dir.display())))?;
        }
        fs::write(&path, json)
            .map_err(|e| TensorError::Io(format!("write {}: {e}", path.as_ref().display())))
    }

    /// Loads a model saved by [`save`](Self::save). Filesystem failures map
    /// to [`TensorError::Io`], malformed or invalid checkpoints to
    /// [`TensorError::Corrupt`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TensorError> {
        let json = fs::read_to_string(&path)
            .map_err(|e| TensorError::Io(format!("read {}: {e}", path.as_ref().display())))?;
        let model: TransformerLm = serde_json::from_str(&json)
            .map_err(|e| TensorError::Corrupt(format!("parse checkpoint: {e}")))?;
        model.cfg.validate().map_err(TensorError::Corrupt)?;
        Ok(model)
    }

    /// Loads a model and immediately quantizes its frozen base
    /// ([`Self::quantize_frozen_base`]) — the int8 inference load path.
    pub fn load_quantized(path: impl AsRef<Path>, spec: QuantSpec) -> Result<Self, TensorError> {
        let mut model = Self::load(path)?;
        model.quantize_frozen_base(spec);
        Ok(model)
    }

    /// Quantizes the frozen base's attention and FFN projections to packed
    /// int8 blocks for fused dequant-matmul inference; embeddings, LayerNorms
    /// and the tied LM head stay f32 (as in QLoRA), and adapters/gates added
    /// by hooks are untouched — they are trainable and must remain exact.
    /// Each projection's `w` is replaced by its dequantized values, so tape
    /// forwards over this model see the same numbers the fused kernels fold.
    /// Returns the number of quantized projections. Inference-only contract:
    /// quantize after all weight mutation (training/loading) is done.
    pub fn quantize_frozen_base(&mut self, spec: QuantSpec) -> usize {
        let mut count = 0;
        for block in self.blocks_mut() {
            for lin in block.attn_mut().projections_mut() {
                lin.quantize_frozen(spec);
                count += 1;
            }
            for lin in block.ffn_mut().projections_mut() {
                lin.quantize_frozen(spec);
                count += 1;
            }
        }
        count
    }

    /// Whether [`Self::quantize_frozen_base`] has run (checks the first
    /// attention projection — quantization is always all-or-nothing).
    pub fn is_quantized(&self) -> bool {
        self.blocks
            .first()
            .is_some_and(|b| b.attn().wq().is_quantized())
    }
}

impl Module for TransformerLm {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        self.tok_embed.visit(f);
        self.pos_embed.visit(f);
        for b in &self.blocks {
            b.visit(f);
        }
        self.ln_f.visit(f);
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.tok_embed.visit_mut(f);
        self.pos_embed.visit_mut(f);
        for b in &mut self.blocks {
            b.visit_mut(f);
        }
        self.ln_f.visit_mut(f);
    }
}

/// Builds `(tokens, targets)` for teacher forcing: the model sees
/// `prompt ++ completion[..-1]` and must predict each completion token;
/// prompt positions are masked with [`IGNORE_INDEX`].
pub fn completion_sample(prompt: &[usize], completion: &[usize]) -> (Vec<usize>, Vec<usize>) {
    assert!(
        !completion.is_empty(),
        "completion_sample: empty completion"
    );
    let mut tokens = Vec::with_capacity(prompt.len() + completion.len() - 1);
    tokens.extend_from_slice(prompt);
    tokens.extend_from_slice(&completion[..completion.len() - 1]);
    let mut targets = vec![IGNORE_INDEX; tokens.len()];
    for (i, &tok) in completion.iter().enumerate() {
        targets[prompt.len() - 1 + i] = tok;
    }
    (tokens, targets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoHook;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn model() -> TransformerLm {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        TransformerLm::new(ModelConfig::tiny(40), &mut rng)
    }

    #[test]
    fn forward_logits_shape() {
        let m = model();
        let mut t = Tape::new();
        let y = m.forward(&[1, 2, 3], &NoHook, &mut t);
        assert_eq!(t.value(y).shape(), (3, 40));
    }

    #[test]
    fn trace_covers_all_layers() {
        let m = model();
        let mut t = Tape::new();
        let mut trace = ForwardTrace::new();
        m.forward_traced(&[1, 2], &NoHook, &mut t, &mut trace);
        assert_eq!(trace.ffn_inputs.len(), 2);
        assert_eq!(trace.block_outputs.len(), 2);
    }

    #[test]
    fn completion_sample_alignment() {
        let (tokens, targets) = completion_sample(&[10, 11], &[20, 21]);
        assert_eq!(tokens, vec![10, 11, 20]);
        assert_eq!(targets, vec![IGNORE_INDEX, 20, 21]);
    }

    #[test]
    fn lm_loss_is_finite_scalar() {
        let m = model();
        let mut t = Tape::new();
        let loss = m.completion_loss(&[1, 2], &[3, 4], &NoHook, &mut t);
        let v = t.value(loss).scalar_value();
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn logprob_is_negative_and_finite() {
        let m = model();
        let lp = m.completion_logprob(&[1, 2], &[3], &NoHook);
        assert!(lp < 0.0 && lp.is_finite());
    }

    #[test]
    fn training_signal_reaches_params() {
        let mut m = model();
        let mut t = Tape::new();
        let loss = m.completion_loss(&[1, 2], &[3], &NoHook, &mut t);
        t.backward(loss);
        let grads = t.grads();
        let mut with_grad = 0;
        m.visit_mut(&mut |p| {
            if grads.get(p.id()).is_some() {
                with_grad += 1;
            }
        });
        // Every parameter should receive gradient (tied embeddings included).
        assert_eq!(with_grad, {
            let mut total = 0;
            m.visit(&mut |_| total += 1);
            total
        });
    }

    #[test]
    fn save_load_round_trip_preserves_logits() {
        let m = model();
        let dir = std::env::temp_dir().join("infuserki_test_ckpt");
        let path = dir.join("model.json");
        m.save(&path).unwrap();
        let loaded = TransformerLm::load(&path).unwrap();
        let mut t1 = Tape::new();
        let mut t2 = Tape::new();
        let a = m.forward(&[1, 2, 3], &NoHook, &mut t1);
        let b = loaded.forward(&[1, 2, 3], &NoHook, &mut t2);
        assert_eq!(t1.value(a).data(), t2.value(b).data());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn load_missing_path_is_io_error() {
        let err = TransformerLm::load("/nonexistent/infuserki/model.json").unwrap_err();
        assert!(matches!(err, TensorError::Io(_)), "{err}");
    }

    #[test]
    fn load_garbage_is_corrupt_error() {
        let dir = std::env::temp_dir().join(format!("infuserki_badckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{not json").unwrap();
        let err = TransformerLm::load(&path).unwrap_err();
        assert!(matches!(err, TensorError::Corrupt(_)), "{err}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn forward_batch_packs_per_sequence_logits() {
        let m = model();
        let (logits, batch) = m.forward_batch(&[vec![1, 2, 3], vec![4, 5]], &NoHook);
        assert_eq!(batch.n_seqs(), 2);
        assert_eq!(logits.shape(), (5, 40));
        assert_eq!(batch.range(1), 3..5);
    }

    #[test]
    fn decode_step_batch_returns_one_row_per_sequence() {
        let m = model();
        let (mut cache, _) = m.prefill_batch(&[vec![1, 2], vec![3, 4, 5]], &NoHook);
        let logits = m.decode_step_batch(&[6, 7], &NoHook, &mut cache);
        assert_eq!(logits.shape(), (2, 40));
        assert_eq!(cache.tokens_of(0), 3);
        assert_eq!(cache.tokens_of(1), 4);
    }

    #[test]
    #[should_panic(expected = "exceeds max_seq")]
    fn forward_rejects_overlong_input() {
        let m = model();
        let mut t = Tape::new();
        let tokens = vec![0usize; m.config().max_seq + 1];
        m.forward(&tokens, &NoHook, &mut t);
    }
}
