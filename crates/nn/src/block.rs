//! Pre-LN transformer decoder block with hook points on both sublayers.

use infuserki_tensor::{Matrix, NodeId, Param, SeqBatch, Tape};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::attention::CausalSelfAttention;
use crate::block_alloc::BlockPool;
use crate::ffn::FeedForward;
use crate::hooks::{ForwardTrace, HookState, LayerHook};
use crate::kv_cache::SeqKv;
use crate::layers::{LayerNorm, Module};
use crate::ModelConfig;

/// One decoder layer: `x += hook(attn(LN1 x)); x += hook(FFN(LN2 x))`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransformerBlock {
    ln1: LayerNorm,
    attn: CausalSelfAttention,
    ln2: LayerNorm,
    ffn: FeedForward,
    layer: usize,
}

impl TransformerBlock {
    /// New block for layer index `layer` (0-based).
    pub fn new(layer: usize, cfg: &ModelConfig, rng: &mut impl Rng) -> Self {
        TransformerBlock {
            ln1: LayerNorm::new(&format!("blk{layer}.ln1"), cfg.d_model, cfg.ln_eps),
            attn: CausalSelfAttention::new(layer, cfg.d_model, cfg.n_heads, cfg.init_std, rng),
            ln2: LayerNorm::new(&format!("blk{layer}.ln2"), cfg.d_model, cfg.ln_eps),
            ffn: FeedForward::new(layer, cfg.d_model, cfg.d_ff, cfg.init_std, rng),
            layer,
        }
    }

    /// Forward one block, recording sublayer states in `trace`.
    pub fn forward(
        &self,
        x: NodeId,
        hook: &dyn LayerHook,
        tape: &mut Tape,
        trace: &mut ForwardTrace,
    ) -> NodeId {
        // Attention sublayer.
        let a_in = self.ln1.forward(x, tape);
        let a_raw = self.attn.forward(a_in, hook, tape);
        let a_out = hook.attn_output(self.layer, a_in, a_raw, tape, trace);
        let x = tape.add(x, a_out);

        // FFN sublayer — `H_P^l` in the paper's notation is `f_in`.
        let f_in = self.ln2.forward(x, tape);
        let f_raw = self.ffn.forward(f_in, tape);
        trace.ffn_inputs.push(f_in);
        trace.ffn_outputs.push(f_raw);
        let f_out = hook.ffn_output(self.layer, f_in, f_raw, tape, trace);
        let x = tape.add(x, f_out);

        trace.block_outputs.push(x);
        x
    }

    /// Batched incremental forward over packed chunks (layout in `batch`):
    /// LayerNorm, FFN and the residual adds are row-local and run packed;
    /// attention and the sublayer-output hooks dispatch per sequence through
    /// [`CausalSelfAttention::forward_batch`] and the hook's `_batch`
    /// methods. `seqs`/`states` hold one entry per sequence; `pool` is the
    /// block pool their tables point into, and `prefix` this layer's shared
    /// virtual prefix K/V panel.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_batch(
        &self,
        x: &Matrix,
        batch: &SeqBatch,
        hook: &dyn LayerHook,
        pool: &mut BlockPool,
        seqs: &[SeqKv],
        prefix: &(Matrix, Matrix),
        states: &mut [Option<Box<dyn HookState>>],
    ) -> Matrix {
        // Attention sublayer.
        let a_in = self.ln1.apply(x);
        let a_raw = self
            .attn
            .forward_batch(&a_in, batch, hook, pool, seqs, prefix);
        let a_out = hook.infer_attn_output_batch(self.layer, &a_in, a_raw, batch, states);
        let mut x = x.clone();
        x.add_assign(&a_out);

        // FFN sublayer.
        let f_in = self.ln2.apply(&x);
        let f_raw = self.ffn.apply(&f_in);
        let f_out = hook.infer_ffn_output_batch(self.layer, &f_in, f_raw, batch, states);
        x.add_assign(&f_out);
        x
    }

    /// Layer index.
    pub fn layer(&self) -> usize {
        self.layer
    }

    /// The attention module.
    pub fn attn(&self) -> &CausalSelfAttention {
        &self.attn
    }

    /// Mutable attention module (quantization).
    pub fn attn_mut(&mut self) -> &mut CausalSelfAttention {
        &mut self.attn
    }

    /// The FFN module.
    pub fn ffn(&self) -> &FeedForward {
        &self.ffn
    }

    /// Mutable FFN module (quantization).
    pub fn ffn_mut(&mut self) -> &mut FeedForward {
        &mut self.ffn
    }
}

impl Module for TransformerBlock {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        self.ln1.visit(f);
        self.attn.visit(f);
        self.ln2.visit(f);
        self.ffn.visit(f);
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.ln1.visit_mut(f);
        self.attn.visit_mut(f);
        self.ln2.visit_mut(f);
        self.ffn.visit_mut(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoHook;
    use infuserki_tensor::Matrix;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn block() -> TransformerBlock {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let cfg = ModelConfig::tiny(50);
        TransformerBlock::new(0, &cfg, &mut rng)
    }

    #[test]
    fn forward_records_trace() {
        let b = block();
        let mut t = Tape::new();
        let mut trace = ForwardTrace::new();
        let x = t.leaf(Matrix::full(4, 16, 0.1));
        let y = b.forward(x, &NoHook, &mut t, &mut trace);
        assert_eq!(t.value(y).shape(), (4, 16));
        assert_eq!(trace.ffn_inputs.len(), 1);
        assert_eq!(trace.ffn_outputs.len(), 1);
        assert_eq!(trace.block_outputs.len(), 1);
        assert_eq!(trace.block_outputs[0], y);
    }

    #[test]
    fn residual_path_active() {
        // Output differs from input (sublayers contribute) but correlates with
        // it (residual). Check the former.
        let b = block();
        let mut t = Tape::new();
        let mut trace = ForwardTrace::new();
        let x = t.leaf(Matrix::full(2, 16, 0.4));
        let y = b.forward(x, &NoHook, &mut t, &mut trace);
        assert_ne!(t.value(y).data(), t.value(x).data());
        assert!(t.value(y).all_finite());
    }

    #[test]
    fn param_visit_covers_all() {
        let b = block();
        let mut names = Vec::new();
        b.visit(&mut |p| names.push(p.name().to_string()));
        assert!(names.iter().any(|n| n.contains("ln1")));
        assert!(names.iter().any(|n| n.contains("attn.wq")));
        assert!(names.iter().any(|n| n.contains("ffn.w2")));
        // 2 LN × 2 + attn × 4 + ffn × 4 (w+b each)
        assert_eq!(names.len(), 2 + 4 + 2 + 4);
    }
}
