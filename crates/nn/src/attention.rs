//! Causal multi-head self-attention with hook points for LoRA deltas and
//! prefix-tuning key/value rows.

use infuserki_tensor::{kernels, Matrix, NodeId, Param, SeqBatch, Tape};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::block_alloc::BlockPool;
use crate::kv_cache::SeqKv;
use crate::layers::{Linear, Module};
use crate::LayerHook;

/// Multi-head causal self-attention.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CausalSelfAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    n_heads: usize,
    head_dim: usize,
    layer: usize,
}

impl CausalSelfAttention {
    /// New attention module for layer index `layer`.
    pub fn new(layer: usize, d_model: usize, n_heads: usize, std: f32, rng: &mut impl Rng) -> Self {
        assert_eq!(d_model % n_heads, 0, "d_model must divide into heads");
        let p = |n: &str| format!("blk{layer}.attn.{n}");
        CausalSelfAttention {
            wq: Linear::new(&p("wq"), d_model, d_model, std, false, rng),
            wk: Linear::new(&p("wk"), d_model, d_model, std, false, rng),
            wv: Linear::new(&p("wv"), d_model, d_model, std, false, rng),
            wo: Linear::new(&p("wo"), d_model, d_model, std, false, rng),
            n_heads,
            head_dim: d_model / n_heads,
            layer,
        }
    }

    /// Forward over `x: [n, d_model]` (post-LN sublayer input). The hook may
    /// add low-rank deltas to the q/v projections and prepend prefix K/V rows.
    pub fn forward(&self, x: NodeId, hook: &dyn LayerHook, tape: &mut Tape) -> NodeId {
        let mut q = self.wq.forward(x, tape);
        let k = self.wk.forward(x, tape);
        let mut v = self.wv.forward(x, tape);

        if let Some(dq) = hook.attn_q_delta(self.layer, x, tape) {
            q = tape.add(q, dq);
        }
        if let Some(dv) = hook.attn_v_delta(self.layer, x, tape) {
            v = tape.add(v, dv);
        }
        let prefix = hook.prefix_kv(self.layer, tape);
        let prefix_len = prefix.map(|(pk, _)| tape.value(pk).rows()).unwrap_or(0);

        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut heads = Vec::with_capacity(self.n_heads);
        for h in 0..self.n_heads {
            let lo = h * self.head_dim;
            let hi = lo + self.head_dim;
            let qh = tape.slice_cols(q, lo, hi);
            let mut kh = tape.slice_cols(k, lo, hi);
            let mut vh = tape.slice_cols(v, lo, hi);
            if let Some((pk, pv)) = prefix {
                let pkh = tape.slice_cols(pk, lo, hi);
                let pvh = tape.slice_cols(pv, lo, hi);
                kh = tape.concat_rows(pkh, kh);
                vh = tape.concat_rows(pvh, vh);
            }
            let scores = tape.matmul_bt(qh, kh);
            let scaled = tape.scale(scores, scale);
            let masked = tape.causal_mask(scaled, prefix_len);
            let attn = tape.softmax(masked);
            heads.push(tape.matmul(attn, vh));
        }
        let merged = tape.concat_cols(&heads);
        self.wo.forward(merged, tape)
    }

    /// Batched incremental forward over the paged KV pool: `x` packs one new
    /// chunk per sequence (layout in `batch`); `seqs[i]` is sequence `i`'s
    /// block table, with the span for this chunk already made writable
    /// (`SeqKv::prepare_append`); `prefix` is this layer's shared virtual
    /// prefix K/V panel (empty matrices when the hook provides none).
    ///
    /// The q/k/v/output projections and the hook's q/v deltas are row-local,
    /// so they run once over the packed matrix — per-row bitwise-equal (at
    /// one kernel thread) to projecting each sequence alone. Only the
    /// score/mask/softmax/AV stage mixes rows, and it runs per sequence
    /// against that sequence's own cached history, so batch members cannot
    /// attend to each other.
    ///
    /// Bitwise contract: scores are assembled panel-per-block
    /// ([`kernels::matmul_bt_cols_panel`] — each element depends on one Q row
    /// and one K row only) and the attention·V product folds prefix-then-
    /// blocks in ascending order through one continued accumulation chain
    /// ([`kernels::matmul_cols_seg_into`]), so the output rows are
    /// bit-for-bit what the contiguous-cache kernels produced.
    pub fn forward_batch(
        &self,
        x: &Matrix,
        batch: &SeqBatch,
        hook: &dyn LayerHook,
        pool: &mut BlockPool,
        seqs: &[SeqKv],
        prefix: &(Matrix, Matrix),
    ) -> Matrix {
        assert_eq!(
            batch.n_seqs(),
            seqs.len(),
            "forward_batch: cache/batch mismatch"
        );
        assert_eq!(batch.total_rows(), x.rows(), "forward_batch: row mismatch");
        let mut q = self.wq.apply(x);
        let k = self.wk.apply(x);
        let mut v = self.wv.apply(x);
        if let Some(dq) = hook.infer_attn_q_delta(self.layer, x) {
            q.add_assign(&dq);
        }
        if let Some(dv) = hook.infer_attn_v_delta(self.layer, x) {
            v.add_assign(&dv);
        }
        let (pk, pv) = prefix;
        let prefix_len = pk.rows();
        let b_rows = pool.block_rows();
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut merged = Matrix::zeros(x.rows(), self.n_heads * self.head_dim);
        for (s, seq) in seqs.iter().enumerate() {
            let rng = batch.range(s);
            let m = rng.len();
            seq.write_chunk(pool, self.layer, &k, &v, rng.start, m);
            let tokens_after = seq.tokens + m;
            // Columns visible to this chunk's first row: prefix + previously
            // cached tokens — the causal-mask offset of these rows in a full
            // forward over this sequence.
            let offset = prefix_len + seq.tokens;
            for h in 0..self.n_heads {
                let lo = h * self.head_dim;
                let hi = lo + self.head_dim;
                let mut scores = Matrix::zeros(m, prefix_len + tokens_after);
                if prefix_len > 0 {
                    kernels::matmul_bt_cols_panel(
                        &q,
                        rng.start,
                        rng.end,
                        pk,
                        prefix_len,
                        lo,
                        hi,
                        &mut scores,
                        0,
                    );
                }
                let mut col = prefix_len;
                for (j, &id) in seq.table.iter().enumerate() {
                    let filled = b_rows.min(tokens_after - j * b_rows);
                    let data = pool.block(id);
                    kernels::matmul_bt_cols_panel(
                        &q,
                        rng.start,
                        rng.end,
                        &data.k[self.layer],
                        filled,
                        lo,
                        hi,
                        &mut scores,
                        col,
                    );
                    col += filled;
                }
                scores.scale_assign(scale);
                kernels::softmax_rows_causal_in_place(&mut scores, offset);
                // Fold the AV product prefix-then-blocks in ascending order;
                // the first segment resets `merged`'s head window, the rest
                // continue the same chain. `m >= 1` guarantees at least one
                // block, so the reset always fires.
                let mut accumulate = false;
                if prefix_len > 0 {
                    kernels::matmul_cols_seg_into(
                        &scores,
                        0,
                        prefix_len,
                        pv,
                        lo,
                        hi,
                        &mut merged,
                        rng.start,
                        false,
                    );
                    accumulate = true;
                }
                let mut col = prefix_len;
                for (j, &id) in seq.table.iter().enumerate() {
                    let filled = b_rows.min(tokens_after - j * b_rows);
                    let data = pool.block(id);
                    kernels::matmul_cols_seg_into(
                        &scores,
                        col,
                        col + filled,
                        &data.v[self.layer],
                        lo,
                        hi,
                        &mut merged,
                        rng.start,
                        accumulate,
                    );
                    accumulate = true;
                    col += filled;
                }
            }
        }
        self.wo.apply(&merged)
    }

    /// The query projection (LoRA targets it).
    pub fn wq(&self) -> &Linear {
        &self.wq
    }

    /// The value projection (LoRA targets it).
    pub fn wv(&self) -> &Linear {
        &self.wv
    }

    /// Mutable access for weight-quantization experiments (QLoRA).
    pub fn projections_mut(&mut self) -> [&mut Linear; 4] {
        [&mut self.wq, &mut self.wk, &mut self.wv, &mut self.wo]
    }
}

impl Module for CausalSelfAttention {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        self.wq.visit(f);
        self.wk.visit(f);
        self.wv.visit(f);
        self.wo.visit(f);
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.wq.visit_mut(f);
        self.wk.visit_mut(f);
        self.wv.visit_mut(f);
        self.wo.visit_mut(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoHook;
    use infuserki_tensor::Matrix;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn attn() -> CausalSelfAttention {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        CausalSelfAttention::new(0, 8, 2, 0.2, &mut rng)
    }

    #[test]
    fn forward_shape_preserved() {
        let a = attn();
        let mut t = Tape::new();
        let x = t.leaf(Matrix::full(5, 8, 0.3));
        let y = a.forward(x, &NoHook, &mut t);
        assert_eq!(t.value(y).shape(), (5, 8));
    }

    #[test]
    fn causality_first_token_ignores_future() {
        // Changing later tokens must not change the first row's output.
        let a = attn();
        let mk = |tail: f32| {
            let mut t = Tape::new();
            let mut m = Matrix::full(4, 8, 0.1);
            for c in 0..8 {
                m.set(3, c, tail);
            }
            let x = t.leaf(m);
            let y = a.forward(x, &NoHook, &mut t);
            t.value(y).row(0).to_vec()
        };
        assert_eq!(mk(0.5), mk(-0.9));
    }

    #[test]
    fn later_tokens_do_attend_to_earlier() {
        let a = attn();
        let mk = |head: f32| {
            let mut t = Tape::new();
            let mut m = Matrix::full(4, 8, 0.1);
            for c in 0..8 {
                m.set(0, c, head);
            }
            let x = t.leaf(m);
            let y = a.forward(x, &NoHook, &mut t);
            t.value(y).row(3).to_vec()
        };
        assert_ne!(mk(0.5), mk(-0.9));
    }

    #[test]
    fn param_count() {
        let a = attn();
        assert_eq!(a.numel(), 4 * 8 * 8);
    }

    #[test]
    fn single_token_works() {
        let a = attn();
        let mut t = Tape::new();
        let x = t.leaf(Matrix::full(1, 8, 0.2));
        let y = a.forward(x, &NoHook, &mut t);
        assert_eq!(t.value(y).shape(), (1, 8));
        assert!(t.value(y).all_finite());
    }
}
