//! Per-layer key/value cache for incremental (chunked) decoding.
//!
//! A [`KvCache`] stores, per transformer layer, the full-width projected key
//! and value rows of every token processed so far — with any hook-provided
//! prefix-tuning rows written once at the top. Incremental forward passes
//! ([`crate::TransformerLm::prefill`] / [`crate::TransformerLm::decode_step`])
//! then attend from only the *new* token rows against the cached history,
//! turning an O(n²)-per-token generation loop into O(n).
//!
//! Keys and values are cached at model width (`[prefix + tokens, d_model]`)
//! rather than per head: per-head column slicing commutes with row
//! concatenation, so slicing the cached matrix reproduces the tape path's
//! per-head `concat_rows(prefix_head, k_head)` bitwise.
//!
//! [`KvCache::fork`] clones the cache (including hook state), which is how
//! shared-prefix MCQ scoring prefills a question once and scores every
//! option from its own branch.

use infuserki_tensor::Matrix;

use crate::hooks::{HookState, LayerHook};

/// Cached projected K/V rows for one attention layer.
#[derive(Clone)]
pub struct LayerKv {
    pub(crate) k: Matrix,
    pub(crate) v: Matrix,
    pub(crate) prefix_len: usize,
}

impl LayerKv {
    /// Appends freshly projected K/V rows for a new chunk of tokens.
    pub(crate) fn append(&mut self, k_new: &Matrix, v_new: &Matrix) {
        self.k.append_rows(k_new);
        self.v.append_rows(v_new);
    }

    /// Total cached rows (prefix + tokens).
    pub fn total_rows(&self) -> usize {
        self.k.rows()
    }

    /// Number of always-visible prefix-tuning rows at the top.
    pub fn prefix_len(&self) -> usize {
        self.prefix_len
    }
}

/// A forkable decoding cache: one [`LayerKv`] per layer plus optional
/// persistent hook state.
#[derive(Clone)]
pub struct KvCache {
    pub(crate) layers: Vec<LayerKv>,
    pub(crate) tokens: usize,
    pub(crate) state: Option<Box<dyn HookState>>,
}

impl KvCache {
    /// Builds an empty cache for `n_layers` layers, querying the hook for
    /// per-layer prefix K/V rows and per-cache state.
    pub(crate) fn new(n_layers: usize, d_model: usize, hook: &dyn LayerHook) -> Self {
        let layers = (0..n_layers)
            .map(|l| {
                let (k, v) = hook
                    .infer_prefix_kv(l)
                    .unwrap_or_else(|| (Matrix::zeros(0, d_model), Matrix::zeros(0, d_model)));
                assert_eq!(k.shape(), v.shape(), "prefix K/V shape mismatch");
                let prefix_len = k.rows();
                LayerKv { k, v, prefix_len }
            })
            .collect();
        KvCache {
            layers,
            tokens: 0,
            state: hook.make_state(),
        }
    }

    /// Number of token positions already cached (prefix rows excluded).
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// An independent copy sharing this cache's history — the branch point
    /// for shared-prefix option scoring and beam search.
    pub fn fork(&self) -> KvCache {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoHook;

    #[test]
    fn empty_cache_has_no_rows() {
        let c = KvCache::new(3, 8, &NoHook);
        assert_eq!(c.layers.len(), 3);
        assert_eq!(c.tokens(), 0);
        for l in &c.layers {
            assert_eq!(l.total_rows(), 0);
            assert_eq!(l.prefix_len(), 0);
        }
    }

    #[test]
    fn append_grows_rows() {
        let mut c = KvCache::new(1, 4, &NoHook);
        let k = Matrix::full(2, 4, 1.0);
        let v = Matrix::full(2, 4, 2.0);
        c.layers[0].append(&k, &v);
        assert_eq!(c.layers[0].total_rows(), 2);
        let fork = c.fork();
        c.layers[0].append(&k, &v);
        assert_eq!(c.layers[0].total_rows(), 4);
        assert_eq!(fork.layers[0].total_rows(), 2, "fork is independent");
    }
}
