//! Per-sequence block tables over the paged KV pool — the cache handed to
//! incremental (chunked) decoding of one or many independent sequences.
//!
//! A [`KvCache`] stores, per batched sequence, a table of [`BlockId`]s into a
//! shared [`BlockPool`]: block `j` holds the full-width projected K/V rows of
//! token positions `[j·B, (j+1)·B)` for *every* layer (`B = block_rows`).
//! Hook-provided prefix-tuning rows are not copied per sequence any more:
//! they live once in an `Arc` and attention reads them as a virtual panel in
//! front of every sequence's blocks.
//!
//! Sharing is ref-counted at block granularity. [`KvCache::fork`] /
//! [`KvCache::gather`] add references instead of copying rows, so an MCQ
//! fan-out shares its prompt's blocks across branches; a branch that appends
//! into a *partial* shared block copies-on-write first
//! (`SeqKv::prepare_append`), while *full* shared blocks are immutable and
//! shared for their lifetime. The serving scheduler's radix prefix index
//! pins full blocks the same way, which is what lets a new request adopt a
//! cached prefix and skip its prefill.
//!
//! Bitwise contract: the per-head kernels assemble scores and the attention·V
//! product block-by-block through single ascending accumulation chains
//! (`matmul_bt_cols_panel` / `matmul_cols_seg_into`), so a sequence read
//! through its block table produces bit-for-bit the rows a contiguous cache
//! produced — sharing changes storage, never arithmetic.

use std::collections::HashSet;
use std::sync::Arc;

use infuserki_obs as obs;
use infuserki_tensor::Matrix;

use crate::block_alloc::{BlockId, BlockPool, PoolHandle};
use crate::hooks::{HookState, LayerHook};

/// Counts cache branch points (`fork` + `gather`) in the global registry —
/// one cheap `fetch_add` per branch, so MCQ option-scoring fan-out is
/// visible in snapshots.
fn fork_counter() -> &'static std::sync::Arc<obs::Counter> {
    static C: std::sync::OnceLock<std::sync::Arc<obs::Counter>> = std::sync::OnceLock::new();
    C.get_or_init(|| obs::global().counter("engine.cache_forks"))
}

/// One sequence's view into the pool: its block table and token count.
/// Block `j` covers token positions `[j·B, (j+1)·B)`; the last block is
/// partially filled unless `tokens` is a multiple of `B`. Invariant:
/// `table.len() == ceil(tokens / B)` between forward passes (during a pass,
/// `prepare_append` extends the table ahead of the writes).
///
/// Public only because the per-layer forward passes take slices of these;
/// construction and mutation stay inside the crate.
#[derive(Clone)]
pub struct SeqKv {
    pub(crate) table: Vec<BlockId>,
    pub(crate) tokens: usize,
}

impl SeqKv {
    /// Makes the next `extra` token rows writable: copies-on-write a shared
    /// partial tail block and allocates fresh blocks to cover
    /// `tokens + extra`. Full shared blocks are left shared — they are never
    /// written again.
    pub(crate) fn prepare_append(&mut self, pool: &mut BlockPool, extra: usize) {
        if extra == 0 {
            return;
        }
        let b = pool.block_rows();
        let fill = self.tokens % b;
        if fill != 0 {
            let last = *self.table.last().expect("partial fill implies a block");
            if pool.refs(last) > 1 {
                let fresh = pool.copy_block(last, fill);
                pool.release(last);
                *self.table.last_mut().unwrap() = fresh;
            }
        }
        let need = (self.tokens + extra).div_ceil(b);
        while self.table.len() < need {
            let id = pool.alloc();
            self.table.push(id);
        }
    }

    /// Writes `m` freshly projected rows (`src[src0 .. src0+m]` of the packed
    /// per-chunk K/V) into this sequence's tail blocks for one layer. The
    /// span must have been made writable by `prepare_append`; `tokens` is
    /// advanced by the caller once all layers are written.
    pub(crate) fn write_chunk(
        &self,
        pool: &mut BlockPool,
        layer: usize,
        k: &Matrix,
        v: &Matrix,
        src0: usize,
        m: usize,
    ) {
        let b = pool.block_rows();
        let mut t = 0usize;
        while t < m {
            let g = self.tokens + t;
            let j = g / b;
            let r0 = g % b;
            let n = (b - r0).min(m - t);
            let data = pool.block_mut(self.table[j]);
            for i in 0..n {
                data.k[layer]
                    .row_mut(r0 + i)
                    .copy_from_slice(k.row(src0 + t + i));
                data.v[layer]
                    .row_mut(r0 + i)
                    .copy_from_slice(v.row(src0 + t + i));
            }
            t += n;
        }
    }
}

/// A forkable decoding cache over `n_seqs` independent sequences: block
/// tables into a shared [`BlockPool`] plus optional per-sequence hook state.
pub struct KvCache {
    pub(crate) pool: PoolHandle,
    /// Per-layer hook prefix K/V panels (`[prefix_len, d_model]` each; empty
    /// matrices when the hook provides none). Shared, never mutated.
    pub(crate) prefix: Arc<Vec<(Matrix, Matrix)>>,
    pub(crate) seqs: Vec<SeqKv>,
    pub(crate) states: Vec<Option<Box<dyn HookState>>>,
    block_rows: usize,
}

impl KvCache {
    /// Builds an empty cache for `n_seqs` sequences over `pool`, querying
    /// the hook for per-layer prefix K/V rows and per-sequence state.
    pub(crate) fn new(
        n_layers: usize,
        d_model: usize,
        hook: &dyn LayerHook,
        n_seqs: usize,
        pool: PoolHandle,
    ) -> Self {
        assert!(n_seqs > 0, "KvCache: need at least one sequence");
        let block_rows = {
            let p = pool.lock();
            assert_eq!(p.n_layers(), n_layers, "KvCache: pool layer mismatch");
            assert_eq!(p.d_model(), d_model, "KvCache: pool width mismatch");
            p.block_rows()
        };
        let prefix = (0..n_layers)
            .map(|l| {
                let (k, v) = hook
                    .infer_prefix_kv(l)
                    .unwrap_or_else(|| (Matrix::zeros(0, d_model), Matrix::zeros(0, d_model)));
                assert_eq!(k.shape(), v.shape(), "prefix K/V shape mismatch");
                (k, v)
            })
            .collect();
        KvCache {
            pool,
            prefix: Arc::new(prefix),
            seqs: (0..n_seqs)
                .map(|_| SeqKv {
                    table: Vec::new(),
                    tokens: 0,
                })
                .collect(),
            states: (0..n_seqs).map(|_| hook.make_state()).collect(),
            block_rows,
        }
    }

    /// Number of batched sequences.
    pub fn n_seqs(&self) -> usize {
        self.seqs.len()
    }

    /// Rows each KV block spans.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// The pool this cache allocates from (shared with every cache absorbed
    /// into or gathered out of it).
    pub fn pool_handle(&self) -> PoolHandle {
        self.pool.clone()
    }

    /// Token positions already cached (prefix rows excluded) — batch-of-1
    /// convenience.
    ///
    /// # Panics
    /// Panics on a multi-sequence cache; use [`KvCache::tokens_of`] there.
    pub fn tokens(&self) -> usize {
        assert_eq!(self.n_seqs(), 1, "tokens() on a batched cache");
        self.seqs[0].tokens
    }

    /// Token positions already cached for sequence `i`.
    pub fn tokens_of(&self, i: usize) -> usize {
        self.seqs[i].tokens
    }

    /// Sequence `i`'s block table, in token order. The serving scheduler
    /// snapshots full blocks from here into the prefix index.
    pub fn seq_table(&self, i: usize) -> &[BlockId] {
        &self.seqs[i].table
    }

    /// A clone of sequence `i`'s hook state (the prefix index stores these
    /// alongside cached blocks so stateful hooks can resume mid-sequence).
    pub fn clone_state(&self, i: usize) -> Option<Box<dyn HookState>> {
        self.states[i].clone()
    }

    /// Seeds empty sequence `i` with a cached prefix: `blocks` (full blocks
    /// covering exactly `tokens` positions) are adopted by reference and the
    /// hook state snapshot restored. This is the serving-side prefix-cache
    /// hit: the adopted positions are never re-prefilled.
    pub fn adopt_prefix(
        &mut self,
        i: usize,
        blocks: &[BlockId],
        tokens: usize,
        state: Option<Box<dyn HookState>>,
    ) {
        let seq = &mut self.seqs[i];
        assert_eq!(seq.tokens, 0, "adopt_prefix: sequence already has tokens");
        assert!(seq.table.is_empty(), "adopt_prefix: sequence has blocks");
        assert_eq!(
            tokens,
            blocks.len() * self.block_rows,
            "adopt_prefix: only whole blocks can be adopted"
        );
        let mut pool = self.pool.lock();
        for &id in blocks {
            pool.retain(id);
        }
        drop(pool);
        seq.table.extend_from_slice(blocks);
        seq.tokens = tokens;
        self.states[i] = state;
    }

    /// An independent copy sharing this cache's history — the branch point
    /// for shared-prefix option scoring and beam search. Blocks are shared
    /// by reference (copy-on-write on the next append into a partial tail).
    pub fn fork(&self) -> KvCache {
        fork_counter().inc();
        self.clone()
    }

    /// A new cache whose sequence `j` shares this cache's sequence
    /// `indices[j]`. Indices may repeat — scoring four options of one MCQ
    /// branches its prefilled question into four cache sequences at once,
    /// all referencing the same prompt blocks.
    pub fn gather(&self, indices: &[usize]) -> KvCache {
        assert!(!indices.is_empty(), "gather: empty selection");
        fork_counter().inc();
        let mut pool = self.pool.lock();
        for &i in indices {
            for &id in &self.seqs[i].table {
                pool.retain(id);
            }
        }
        drop(pool);
        KvCache {
            pool: self.pool.clone(),
            prefix: self.prefix.clone(),
            seqs: indices.iter().map(|&i| self.seqs[i].clone()).collect(),
            states: indices.iter().map(|&i| self.states[i].clone()).collect(),
            block_rows: self.block_rows,
        }
    }

    /// Drops every sequence not listed in `keep` (strictly ascending
    /// indices), releasing the dropped sequences' block references. Batched
    /// greedy decoding retires finished sequences this way.
    pub fn retain_indices(&mut self, keep: &[usize]) {
        assert!(
            keep.windows(2).all(|w| w[0] < w[1]),
            "retain_indices: indices must be strictly ascending"
        );
        assert!(!keep.is_empty(), "retain_indices: would empty the cache");
        assert!(
            *keep.last().unwrap() < self.n_seqs(),
            "retain_indices: out of range"
        );
        let mut pool = self.pool.lock();
        let mut next = 0usize;
        for (i, seq) in self.seqs.iter().enumerate() {
            if next < keep.len() && keep[next] == i {
                next += 1;
            } else {
                for &id in &seq.table {
                    pool.release(id);
                }
            }
        }
        drop(pool);
        retain_by_index(&mut self.seqs, keep);
        retain_by_index(&mut self.states, keep);
    }

    /// Pre-allocates pool blocks for `extra` more token rows on every
    /// sequence, so a decode loop of known length never touches the system
    /// allocator mid-flight.
    pub fn reserve_rows(&mut self, extra: usize) {
        let blocks = extra.div_ceil(self.block_rows) * self.n_seqs();
        self.pool.lock().reserve_free_blocks(blocks);
    }

    /// Rows any one sequence could append without new system allocation:
    /// slack in its tail block plus the pool's ready freelist (minimum over
    /// sequences).
    pub fn min_row_capacity(&self) -> usize {
        let free = self.pool.lock().free_rows();
        self.seqs
            .iter()
            .map(|s| s.table.len() * self.block_rows - s.tokens + free)
            .min()
            .unwrap_or(0)
    }

    /// Live K/V rows this cache holds: block-granular (distinct referenced
    /// blocks × block size — shared blocks count once) plus the widest
    /// layer's virtual prefix rows per sequence, matching what the serving
    /// admission accounting charges. The gauge the scheduler exports.
    pub fn rows_used(&self) -> usize {
        let max_prefix = self.prefix.iter().map(|(k, _)| k.rows()).max().unwrap_or(0);
        let distinct: HashSet<BlockId> = self
            .seqs
            .iter()
            .flat_map(|s| s.table.iter().copied())
            .collect();
        distinct.len() * self.block_rows + self.n_seqs() * max_prefix
    }

    /// Rows the pool's allocations can hold without new system allocation
    /// (live blocks plus storage-bearing freelist blocks).
    /// `rows_capacity() - rows_used()` over a private pool is spare
    /// reservation that [`KvCache::compact`] can reclaim.
    pub fn rows_capacity(&self) -> usize {
        self.pool.lock().allocated_rows()
    }

    /// Returns the pool freelist's storage to the allocator.
    /// [`KvCache::retain_indices`] frees retired sequences' blocks onto the
    /// freelist but keeps their storage for reuse; a scheduler that retires
    /// and back-fills continuously calls this so freed rows are actually
    /// reclaimed rather than accumulating as freelist slack.
    pub fn compact(&mut self) {
        self.pool.lock().compact();
    }

    /// Appends every sequence of `other` (same pool, same layer count) after
    /// this cache's sequences, moving block references without copying rows.
    /// The serving scheduler prefills newcomers into a fresh cache and
    /// absorbs them into the live decode batch this way.
    pub fn absorb(&mut self, mut other: KvCache) {
        assert!(
            self.pool.same_pool(&other.pool),
            "absorb: caches must share one block pool"
        );
        assert_eq!(
            self.prefix.len(),
            other.prefix.len(),
            "absorb: layer count mismatch"
        );
        // Move the references over; `other` drops with empty tables, so the
        // refcounts transfer rather than decrement.
        self.seqs.append(&mut other.seqs);
        self.states.append(&mut other.states);
    }
}

impl Clone for KvCache {
    fn clone(&self) -> Self {
        let mut pool = self.pool.lock();
        for seq in &self.seqs {
            for &id in &seq.table {
                pool.retain(id);
            }
        }
        drop(pool);
        KvCache {
            pool: self.pool.clone(),
            prefix: self.prefix.clone(),
            seqs: self.seqs.clone(),
            states: self.states.clone(),
            block_rows: self.block_rows,
        }
    }
}

impl Drop for KvCache {
    fn drop(&mut self) {
        let mut pool = self.pool.lock();
        for seq in &self.seqs {
            for &id in &seq.table {
                pool.release(id);
            }
        }
    }
}

/// Keeps `v[i]` exactly for the ascending indices in `keep`.
fn retain_by_index<T>(v: &mut Vec<T>, keep: &[usize]) {
    let mut next = 0usize;
    let mut idx = 0usize;
    v.retain(|_| {
        let hit = next < keep.len() && keep[next] == idx;
        if hit {
            next += 1;
        }
        idx += 1;
        hit
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoHook;

    fn cache(n_layers: usize, d_model: usize, block_rows: usize, n_seqs: usize) -> KvCache {
        let pool = PoolHandle::new(n_layers, d_model, block_rows);
        KvCache::new(n_layers, d_model, &NoHook, n_seqs, pool)
    }

    /// Appends `m` synthetic token rows to sequence `i` the way a forward
    /// pass does: prepare, write every layer, advance the token count.
    fn append(c: &mut KvCache, i: usize, m: usize, fill: f32) {
        let n_layers = c.prefix.len();
        let d = {
            let p = c.pool.lock();
            p.d_model()
        };
        let k = Matrix::full(m, d, fill);
        let v = Matrix::full(m, d, -fill);
        let pool = c.pool.clone();
        let mut pool = pool.lock();
        c.seqs[i].prepare_append(&mut pool, m);
        for l in 0..n_layers {
            c.seqs[i].write_chunk(&mut pool, l, &k, &v, 0, m);
        }
        drop(pool);
        c.seqs[i].tokens += m;
    }

    #[test]
    fn empty_cache_has_no_rows() {
        let c = cache(3, 8, 4, 1);
        assert_eq!(c.n_seqs(), 1);
        assert_eq!(c.tokens(), 0);
        assert_eq!(c.rows_used(), 0);
        assert!(c.seq_table(0).is_empty());
    }

    #[test]
    fn append_fills_blocks_and_fork_shares_them() {
        let mut c = cache(1, 4, 2, 1);
        append(&mut c, 0, 3, 1.0);
        assert_eq!(c.tokens(), 3);
        assert_eq!(c.seq_table(0).len(), 2, "3 tokens at B=2 span 2 blocks");
        let fork = c.fork();
        {
            let pool = c.pool.lock();
            for &id in c.seq_table(0) {
                assert_eq!(pool.refs(id), 2, "fork shares, not copies");
            }
        }
        // Appending into the shared partial tail copies-on-write; the full
        // block stays shared.
        append(&mut c, 0, 1, 2.0);
        assert_eq!(c.tokens(), 4);
        assert_eq!(fork.tokens(), 3, "fork is independent");
        let pool = c.pool.lock();
        assert_eq!(pool.refs(c.seq_table(0)[0]), 2, "full block still shared");
        assert_eq!(pool.refs(c.seq_table(0)[1]), 1, "partial tail was COWed");
        assert_ne!(c.seq_table(0)[1], fork.seq_table(0)[1]);
        // The COW copied the old fill before the new row landed.
        assert_eq!(pool.block(c.seq_table(0)[1]).k[0].get(0, 0), 1.0);
        assert_eq!(pool.block(c.seq_table(0)[1]).k[0].get(1, 0), 2.0);
        assert_eq!(pool.block(fork.seq_table(0)[1]).k[0].get(0, 0), 1.0);
    }

    #[test]
    fn batched_cache_has_independent_sequences() {
        let mut c = cache(2, 4, 4, 3);
        append(&mut c, 1, 1, 1.0);
        assert_eq!(c.tokens_of(0), 0);
        assert_eq!(c.tokens_of(1), 1);
        assert_eq!(c.tokens_of(2), 0);
        assert_eq!(c.seq_table(0).len(), 0);
        assert_eq!(c.seq_table(1).len(), 1);
    }

    #[test]
    fn gather_selects_and_duplicates_by_reference() {
        let mut c = cache(1, 4, 2, 2);
        append(&mut c, 1, 2, 1.0);
        let g = c.gather(&[1, 1, 0]);
        assert_eq!(g.n_seqs(), 3);
        assert_eq!(g.tokens_of(0), 2);
        assert_eq!(g.tokens_of(1), 2);
        assert_eq!(g.tokens_of(2), 0);
        let pool = c.pool.lock();
        assert_eq!(
            pool.refs(c.seq_table(1)[0]),
            3,
            "source + two gathered branches"
        );
        assert_eq!(pool.live_blocks(), 1, "no rows were copied");
    }

    #[test]
    fn retain_indices_releases_dropped_sequences() {
        let mut c = cache(1, 4, 2, 4);
        for i in 0..4 {
            append(&mut c, i, 2, i as f32);
        }
        assert_eq!(c.pool.lock().live_blocks(), 4);
        c.retain_indices(&[0, 2]);
        assert_eq!(c.n_seqs(), 2);
        assert_eq!(c.tokens_of(1), 2);
        assert_eq!(c.pool.lock().live_blocks(), 2, "dropped blocks were freed");
    }

    #[test]
    fn reserve_rows_sets_capacity() {
        let mut c = cache(2, 4, 4, 2);
        assert_eq!(c.min_row_capacity(), 0);
        c.reserve_rows(17);
        assert!(c.min_row_capacity() >= 17);
    }

    #[test]
    fn row_accounting_is_block_granular_and_shares_count_once() {
        let mut c = cache(2, 4, 2, 3);
        assert_eq!(c.rows_used(), 0);
        append(&mut c, 0, 2, 1.0);
        append(&mut c, 2, 1, 2.0);
        // 2 blocks live (one full, one partial) — block-granular accounting
        // rounds the partial one up.
        assert_eq!(c.rows_used(), 4);
        let g = c.gather(&[0, 0, 2]);
        assert_eq!(g.rows_used(), 4, "shared blocks count once");
        assert!(c.rows_capacity() >= c.rows_used());
    }

    #[test]
    fn retire_then_compact_reclaims_freed_rows() {
        let mut c = cache(2, 4, 4, 3);
        for i in 0..3 {
            append(&mut c, i, 4, 1.0);
        }
        c.reserve_rows(64);
        assert!(c.rows_capacity() >= 3 * 4 + 64);
        c.retain_indices(&[1]);
        // The retired sequences' blocks are on the freelist, still holding
        // storage until compaction.
        assert_eq!(c.rows_used(), 4);
        c.compact();
        assert_eq!(c.rows_capacity(), c.rows_used());
        assert_eq!(c.tokens_of(0), 4, "live rows survive compact");
    }

    #[test]
    fn absorb_moves_block_references() {
        let pool = PoolHandle::new(1, 4, 2);
        let mut a = KvCache::new(1, 4, &NoHook, 2, pool.clone());
        let mut b = KvCache::new(1, 4, &NoHook, 1, pool.clone());
        append(&mut b, 0, 3, 7.0);
        let id = b.seq_table(0)[0];
        a.absorb(b);
        assert_eq!(a.n_seqs(), 3);
        assert_eq!(a.tokens_of(2), 3);
        assert_eq!(pool.lock().refs(id), 1, "absorb moves, not clones, refs");
    }

    #[test]
    #[should_panic(expected = "share one block pool")]
    fn absorb_rejects_foreign_pool() {
        let mut a = cache(2, 4, 4, 1);
        a.absorb(cache(2, 4, 4, 1));
    }

    #[test]
    fn drop_releases_every_block() {
        let pool = PoolHandle::new(1, 4, 2);
        {
            let mut c = KvCache::new(1, 4, &NoHook, 2, pool.clone());
            append(&mut c, 0, 5, 1.0);
            append(&mut c, 1, 2, 2.0);
            assert_eq!(pool.lock().live_blocks(), 4);
            let _fork = c.fork();
            assert_eq!(pool.lock().live_blocks(), 4, "fork adds refs, not blocks");
        }
        assert_eq!(pool.lock().live_blocks(), 0, "all refs released on drop");
    }

    #[test]
    fn adopt_prefix_pins_blocks_and_restores_tokens() {
        let pool = PoolHandle::new(1, 4, 2);
        let mut donor = KvCache::new(1, 4, &NoHook, 1, pool.clone());
        append(&mut donor, 0, 4, 3.0);
        let blocks: Vec<BlockId> = donor.seq_table(0).to_vec();
        let mut taker = KvCache::new(1, 4, &NoHook, 1, pool.clone());
        taker.adopt_prefix(0, &blocks, 4, None);
        assert_eq!(taker.tokens(), 4);
        assert_eq!(pool.lock().refs(blocks[0]), 2);
        drop(donor);
        // The adopted blocks outlive the donor.
        assert_eq!(pool.lock().refs(blocks[0]), 1);
        assert_eq!(pool.lock().block(blocks[0]).k[0].get(0, 0), 3.0);
    }
}
