//! Per-layer key/value cache for incremental (chunked) decoding of one or
//! many independent sequences.
//!
//! A [`KvCache`] stores, per transformer layer and per batched sequence, the
//! full-width projected key and value rows of every token processed so far —
//! with any hook-provided prefix-tuning rows written once at the top.
//! Incremental forward passes ([`crate::TransformerLm::prefill_batch`] /
//! [`crate::TransformerLm::decode_step_batch`] and their batch-of-1 wrappers)
//! then attend from only the *new* token rows against each sequence's cached
//! history, turning an O(n²)-per-token generation loop into O(n) — and
//! advancing every sequence of a ragged batch in one call.
//!
//! Keys and values are cached at model width (`[prefix + tokens, d_model]`)
//! rather than per head: per-head column slicing commutes with row
//! concatenation, so slicing the cached matrix reproduces the tape path's
//! per-head `concat_rows(prefix_head, k_head)` bitwise. Sequences never share
//! K/V storage — attention scores, hook state and token counts are all
//! per-sequence, so batch members cannot leak into each other.
//!
//! [`KvCache::fork`] clones the cache (including hook state), which is how
//! shared-prefix MCQ scoring prefills a question once and scores every
//! option from its own branch; [`KvCache::gather`] is its batched
//! generalization (select/duplicate sequences into a new cache) and
//! [`KvCache::retain_indices`] drops finished sequences in place without
//! copying the survivors.

use infuserki_obs as obs;
use infuserki_tensor::Matrix;

use crate::hooks::{HookState, LayerHook};

/// Counts cache branch points (`fork` + `gather`) in the global registry —
/// one cheap `fetch_add` per branch, so MCQ option-scoring fan-out is
/// visible in snapshots.
fn fork_counter() -> &'static std::sync::Arc<obs::Counter> {
    static C: std::sync::OnceLock<std::sync::Arc<obs::Counter>> = std::sync::OnceLock::new();
    C.get_or_init(|| obs::global().counter("engine.cache_forks"))
}

/// Cached projected K/V rows for one attention layer of one sequence.
#[derive(Clone)]
pub struct LayerKv {
    pub(crate) k: Matrix,
    pub(crate) v: Matrix,
    pub(crate) prefix_len: usize,
}

impl LayerKv {
    /// Appends freshly projected K/V rows for a new chunk of tokens.
    pub(crate) fn append(&mut self, k_new: &Matrix, v_new: &Matrix) {
        self.k.append_rows(k_new);
        self.v.append_rows(v_new);
    }

    /// Total cached rows (prefix + tokens).
    pub fn total_rows(&self) -> usize {
        self.k.rows()
    }

    /// Number of always-visible prefix-tuning rows at the top.
    pub fn prefix_len(&self) -> usize {
        self.prefix_len
    }

    /// Rows the K/V allocations can hold without reallocating.
    pub fn row_capacity(&self) -> usize {
        self.k.row_capacity().min(self.v.row_capacity())
    }

    /// Reserves room for `extra` more rows in both K and V.
    pub fn reserve_rows(&mut self, extra: usize) {
        self.k.reserve_rows(extra);
        self.v.reserve_rows(extra);
    }

    /// Returns spare row capacity to the allocator.
    pub(crate) fn shrink_to_fit(&mut self) {
        self.k.shrink_to_fit();
        self.v.shrink_to_fit();
    }
}

/// A forkable decoding cache over `n_seqs` independent sequences: one
/// [`LayerKv`] per (layer, sequence) plus optional per-sequence hook state.
///
/// Layout is layer-major (`layers[layer][seq]`) because the forward pass
/// walks layers in the outer loop and sequences in the inner one.
#[derive(Clone)]
pub struct KvCache {
    pub(crate) layers: Vec<Vec<LayerKv>>,
    pub(crate) tokens: Vec<usize>,
    pub(crate) states: Vec<Option<Box<dyn HookState>>>,
}

impl KvCache {
    /// Builds an empty cache for `n_layers` layers and `n_seqs` sequences,
    /// querying the hook for per-layer prefix K/V rows and per-sequence
    /// state.
    pub(crate) fn new(
        n_layers: usize,
        d_model: usize,
        hook: &dyn LayerHook,
        n_seqs: usize,
    ) -> Self {
        assert!(n_seqs > 0, "KvCache: need at least one sequence");
        let layers = (0..n_layers)
            .map(|l| {
                let (k, v) = hook
                    .infer_prefix_kv(l)
                    .unwrap_or_else(|| (Matrix::zeros(0, d_model), Matrix::zeros(0, d_model)));
                assert_eq!(k.shape(), v.shape(), "prefix K/V shape mismatch");
                let prefix_len = k.rows();
                (0..n_seqs)
                    .map(|_| LayerKv {
                        k: k.clone(),
                        v: v.clone(),
                        prefix_len,
                    })
                    .collect()
            })
            .collect();
        KvCache {
            layers,
            tokens: vec![0; n_seqs],
            states: (0..n_seqs).map(|_| hook.make_state()).collect(),
        }
    }

    /// Number of batched sequences.
    pub fn n_seqs(&self) -> usize {
        self.tokens.len()
    }

    /// Token positions already cached (prefix rows excluded) — batch-of-1
    /// convenience.
    ///
    /// # Panics
    /// Panics on a multi-sequence cache; use [`KvCache::tokens_of`] there.
    pub fn tokens(&self) -> usize {
        assert_eq!(self.n_seqs(), 1, "tokens() on a batched cache");
        self.tokens[0]
    }

    /// Token positions already cached for sequence `i`.
    pub fn tokens_of(&self, i: usize) -> usize {
        self.tokens[i]
    }

    /// An independent copy sharing this cache's history — the branch point
    /// for shared-prefix option scoring and beam search.
    pub fn fork(&self) -> KvCache {
        fork_counter().inc();
        self.clone()
    }

    /// A new cache whose sequence `j` is a copy of this cache's sequence
    /// `indices[j]`. Indices may repeat — scoring four options of one MCQ
    /// branches its prefilled question into four cache sequences at once.
    pub fn gather(&self, indices: &[usize]) -> KvCache {
        assert!(!indices.is_empty(), "gather: empty selection");
        fork_counter().inc();
        KvCache {
            layers: self
                .layers
                .iter()
                .map(|seqs| indices.iter().map(|&i| seqs[i].clone()).collect())
                .collect(),
            tokens: indices.iter().map(|&i| self.tokens[i]).collect(),
            states: indices.iter().map(|&i| self.states[i].clone()).collect(),
        }
    }

    /// Drops every sequence not listed in `keep` (strictly ascending
    /// indices), without copying the survivors' K/V storage. Batched greedy
    /// decoding retires finished sequences this way.
    pub fn retain_indices(&mut self, keep: &[usize]) {
        assert!(
            keep.windows(2).all(|w| w[0] < w[1]),
            "retain_indices: indices must be strictly ascending"
        );
        assert!(!keep.is_empty(), "retain_indices: would empty the cache");
        assert!(
            *keep.last().unwrap() < self.n_seqs(),
            "retain_indices: out of range"
        );
        for layer in &mut self.layers {
            retain_by_index(layer, keep);
        }
        retain_by_index(&mut self.tokens, keep);
        retain_by_index(&mut self.states, keep);
    }

    /// Reserves room for `extra` more token rows in every (layer, sequence)
    /// K/V pair, so a decode loop of known length never reallocates.
    pub fn reserve_rows(&mut self, extra: usize) {
        for layer in &mut self.layers {
            for kv in layer {
                kv.reserve_rows(extra);
            }
        }
    }

    /// Minimum row capacity across every (layer, sequence) K/V pair.
    pub fn min_row_capacity(&self) -> usize {
        self.layers
            .iter()
            .flatten()
            .map(LayerKv::row_capacity)
            .min()
            .unwrap_or(0)
    }

    /// Live K/V rows this cache holds (prefix + tokens, summed over
    /// sequences), reported as the maximum over layers — hooks may prepend
    /// different prefix lengths per layer, and the widest layer is the one
    /// that bounds memory. The serving scheduler budgets admissions against
    /// this number.
    pub fn rows_used(&self) -> usize {
        self.layers
            .iter()
            .map(|seqs| seqs.iter().map(LayerKv::total_rows).sum())
            .max()
            .unwrap_or(0)
    }

    /// Rows the current allocations can hold without reallocating (summed
    /// over sequences, maximum over layers). `rows_capacity() - rows_used()`
    /// is spare reservation that [`KvCache::compact`] can reclaim.
    pub fn rows_capacity(&self) -> usize {
        self.layers
            .iter()
            .map(|seqs| seqs.iter().map(LayerKv::row_capacity).sum())
            .max()
            .unwrap_or(0)
    }

    /// Releases every sequence's spare K/V reservation back to the
    /// allocator. [`KvCache::retain_indices`] drops retired sequences'
    /// storage but leaves survivors' decode reservations in place; a
    /// scheduler that retires and back-fills continuously calls this so
    /// freed rows are actually reclaimed rather than accumulating as
    /// per-sequence slack.
    pub fn compact(&mut self) {
        for layer in &mut self.layers {
            for kv in layer {
                kv.shrink_to_fit();
            }
        }
    }

    /// Appends every sequence of `other` (same layer count and model width)
    /// after this cache's sequences, moving the K/V storage without copying.
    /// The serving scheduler prefills newcomers into a fresh cache and
    /// absorbs them into the live decode batch this way.
    pub fn absorb(&mut self, other: KvCache) {
        assert_eq!(
            self.layers.len(),
            other.layers.len(),
            "absorb: layer count mismatch"
        );
        for (dst, src) in self.layers.iter_mut().zip(other.layers) {
            dst.extend(src);
        }
        self.tokens.extend(other.tokens);
        self.states.extend(other.states);
    }
}

/// Keeps `v[i]` exactly for the ascending indices in `keep`.
fn retain_by_index<T>(v: &mut Vec<T>, keep: &[usize]) {
    let mut next = 0usize;
    let mut idx = 0usize;
    v.retain(|_| {
        let hit = next < keep.len() && keep[next] == idx;
        if hit {
            next += 1;
        }
        idx += 1;
        hit
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoHook;

    #[test]
    fn empty_cache_has_no_rows() {
        let c = KvCache::new(3, 8, &NoHook, 1);
        assert_eq!(c.layers.len(), 3);
        assert_eq!(c.n_seqs(), 1);
        assert_eq!(c.tokens(), 0);
        for l in &c.layers {
            assert_eq!(l[0].total_rows(), 0);
            assert_eq!(l[0].prefix_len(), 0);
        }
    }

    #[test]
    fn append_grows_rows() {
        let mut c = KvCache::new(1, 4, &NoHook, 1);
        let k = Matrix::full(2, 4, 1.0);
        let v = Matrix::full(2, 4, 2.0);
        c.layers[0][0].append(&k, &v);
        assert_eq!(c.layers[0][0].total_rows(), 2);
        let fork = c.fork();
        c.layers[0][0].append(&k, &v);
        assert_eq!(c.layers[0][0].total_rows(), 4);
        assert_eq!(fork.layers[0][0].total_rows(), 2, "fork is independent");
    }

    #[test]
    fn batched_cache_has_independent_sequences() {
        let mut c = KvCache::new(2, 4, &NoHook, 3);
        assert_eq!(c.n_seqs(), 3);
        let k = Matrix::full(1, 4, 1.0);
        c.layers[0][1].append(&k, &k);
        assert_eq!(c.layers[0][0].total_rows(), 0);
        assert_eq!(c.layers[0][1].total_rows(), 1);
        assert_eq!(c.layers[0][2].total_rows(), 0);
    }

    #[test]
    fn gather_selects_and_duplicates() {
        let mut c = KvCache::new(1, 4, &NoHook, 2);
        let k = Matrix::full(2, 4, 1.0);
        c.layers[0][1].append(&k, &k);
        c.tokens[1] = 2;
        let g = c.gather(&[1, 1, 0]);
        assert_eq!(g.n_seqs(), 3);
        assert_eq!(g.tokens, vec![2, 2, 0]);
        assert_eq!(g.layers[0][0].total_rows(), 2);
        assert_eq!(g.layers[0][1].total_rows(), 2);
        assert_eq!(g.layers[0][2].total_rows(), 0);
    }

    #[test]
    fn retain_indices_drops_in_place() {
        let mut c = KvCache::new(1, 4, &NoHook, 4);
        for (i, t) in c.tokens.iter_mut().enumerate() {
            *t = i;
        }
        c.retain_indices(&[0, 2]);
        assert_eq!(c.n_seqs(), 2);
        assert_eq!(c.tokens, vec![0, 2]);
        assert_eq!(c.layers[0].len(), 2);
    }

    #[test]
    fn reserve_rows_sets_capacity() {
        let mut c = KvCache::new(2, 4, &NoHook, 2);
        assert_eq!(c.min_row_capacity(), 0);
        c.reserve_rows(17);
        assert!(c.min_row_capacity() >= 17);
    }

    #[test]
    fn row_accounting_tracks_live_and_allocated_rows() {
        let mut c = KvCache::new(2, 4, &NoHook, 3);
        assert_eq!(c.rows_used(), 0);
        let k = Matrix::full(2, 4, 1.0);
        c.layers[0][0].append(&k, &k);
        c.layers[0][2].append(&k, &k);
        c.layers[1][0].append(&k, &k);
        // Layer 0 holds 4 rows across its sequences, layer 1 only 2; the
        // accounting reports the widest layer.
        assert_eq!(c.rows_used(), 4);
        assert!(c.rows_capacity() >= c.rows_used());
        c.reserve_rows(8);
        assert!(c.rows_capacity() >= c.rows_used() + 8);
    }

    #[test]
    fn retire_then_compact_reclaims_freed_rows() {
        let mut c = KvCache::new(2, 4, &NoHook, 3);
        let k = Matrix::full(4, 4, 1.0);
        for layer in 0..2 {
            for seq in 0..3 {
                c.layers[layer][seq].append(&k, &k);
            }
        }
        c.reserve_rows(64);
        assert!(c.rows_capacity() >= 3 * (4 + 64));
        c.retain_indices(&[1]);
        // The retired sequences' storage is gone with them, but the
        // survivor still carries its decode reservation until compaction.
        assert_eq!(c.rows_used(), 4);
        c.compact();
        assert_eq!(c.rows_capacity(), c.rows_used());
        assert_eq!(c.layers[0][0].total_rows(), 4, "live rows survive compact");
    }

    #[test]
    fn absorb_appends_sequences_in_order() {
        let mut a = KvCache::new(1, 4, &NoHook, 2);
        let mut b = KvCache::new(1, 4, &NoHook, 1);
        let k = Matrix::full(3, 4, 7.0);
        b.layers[0][0].append(&k, &k);
        b.tokens[0] = 3;
        a.tokens[1] = 1;
        a.absorb(b);
        assert_eq!(a.n_seqs(), 3);
        assert_eq!(a.tokens, vec![0, 1, 3]);
        assert_eq!(a.layers[0][2].total_rows(), 3);
        assert_eq!(a.rows_used(), 3);
    }

    #[test]
    #[should_panic(expected = "layer count mismatch")]
    fn absorb_rejects_layer_mismatch() {
        let mut a = KvCache::new(2, 4, &NoHook, 1);
        a.absorb(KvCache::new(1, 4, &NoHook, 1));
    }

    #[test]
    fn fork_does_not_inherit_unused_reservation() {
        // `fork` clones the K/V buffers; Vec::clone allocates for the *live*
        // rows only, so a parent's spare reservation is not carried over and
        // decode loops must re-reserve on each branch they extend.
        let mut c = KvCache::new(1, 4, &NoHook, 1);
        let k = Matrix::full(2, 4, 1.0);
        c.layers[0][0].append(&k, &k);
        c.reserve_rows(64);
        assert!(c.min_row_capacity() >= 66);
        let fork = c.fork();
        assert_eq!(fork.layers[0][0].total_rows(), 2);
        assert!(
            fork.min_row_capacity() < 66,
            "clone should not copy spare capacity (got {})",
            fork.min_row_capacity()
        );
    }
}
