//! Multiple-choice question construction (Appendix A.1).
//!
//! Each triplet becomes a 4-way MCQ: the gold tail plus three distractors —
//! one chosen for minimal edit distance to the *head* entity, two sampled
//! from the ten candidates nearest (by edit distance) to the *correct
//! answer*. Options are shuffled into positions (a)–(d).

use infuserki_kg::{EntityId, Triple, TripleStore};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::distance::levenshtein;
use crate::templates::TemplateSet;

/// A rendered multiple-choice question.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mcq {
    /// The question text (template-filled).
    pub question: String,
    /// The four options in display order.
    pub options: [String; 4],
    /// Index (0–3) of the correct option.
    pub correct: usize,
    /// The source triple.
    pub triple: Triple,
    /// Which QA template (0–4) rendered the question.
    pub template_idx: usize,
}

impl Mcq {
    /// The gold answer text.
    pub fn answer(&self) -> &str {
        &self.options[self.correct]
    }
}

/// Builds MCQs against a triple store.
pub struct McqBuilder<'a> {
    store: &'a TripleStore,
}

impl<'a> McqBuilder<'a> {
    /// New builder over `store`.
    pub fn new(store: &'a TripleStore) -> Self {
        McqBuilder { store }
    }

    /// Builds the MCQ for `triple` under `template_idx`, drawing distractors
    /// with `rng`. Distractor pools that are too small are topped up from the
    /// full entity set, so this always succeeds on stores with ≥ 4 entities.
    pub fn build(&self, triple: Triple, template_idx: usize, rng: &mut impl Rng) -> Mcq {
        let head_name = self.store.entity_name(triple.head).to_string();
        let gold_name = self.store.entity_name(triple.tail).to_string();
        let question = TemplateSet::question(
            self.store.relation_name(triple.relation),
            &head_name,
            template_idx,
        );

        let distractors = self.pick_distractors(&triple, &head_name, &gold_name, rng);
        let mut options: Vec<String> = vec![gold_name];
        options.extend(distractors);
        debug_assert_eq!(options.len(), 4);
        let mut order = [0usize, 1, 2, 3];
        order.shuffle(rng);
        let mut display: [String; 4] = Default::default();
        let mut correct = 0;
        for (pos, &src) in order.iter().enumerate() {
            if src == 0 {
                correct = pos;
            }
            display[pos] = options[src].clone();
        }
        Mcq {
            question,
            options: display,
            correct,
            triple,
            template_idx,
        }
    }

    fn pick_distractors(
        &self,
        triple: &Triple,
        head_name: &str,
        gold_name: &str,
        rng: &mut impl Rng,
    ) -> Vec<String> {
        // Candidate pool: tails of the same relation (type-consistent),
        // excluding the gold tail and the head itself.
        let mut pool: Vec<EntityId> = self
            .store
            .tail_pool(triple.relation)
            .into_iter()
            .filter(|&e| e != triple.tail && e != triple.head)
            .collect();
        // Top up from the entity universe when a relation's pool is thin.
        if pool.len() < 3 {
            for i in 0..self.store.n_entities() {
                let e = EntityId(i as u32);
                if e != triple.tail && e != triple.head && !pool.contains(&e) {
                    pool.push(e);
                }
                if pool.len() >= 10 {
                    break;
                }
            }
        }
        assert!(pool.len() >= 3, "need at least 3 distractor candidates");

        let names: Vec<&str> = pool.iter().map(|&e| self.store.entity_name(e)).collect();

        // Distractor 1: minimal edit distance to the head entity.
        let d1 = (0..names.len())
            .min_by_key(|&i| levenshtein(head_name, names[i]))
            .expect("non-empty pool");

        // Distractors 2–3: random among the 10 nearest to the gold answer.
        let mut by_gold: Vec<usize> = (0..names.len()).filter(|&i| i != d1).collect();
        by_gold.sort_by_key(|&i| levenshtein(gold_name, names[i]));
        by_gold.truncate(10);
        by_gold.shuffle(rng);

        let mut out = vec![names[d1].to_string()];
        for &i in by_gold.iter().take(2) {
            out.push(names[i].to_string());
        }
        debug_assert_eq!(out.len(), 3);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infuserki_kg::{synth_umls, UmlsConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn store() -> TripleStore {
        synth_umls(&UmlsConfig::with_triplets(200, 11))
    }

    #[test]
    fn mcq_has_gold_and_three_distinct_distractors() {
        let s = store();
        let b = McqBuilder::new(&s);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for &t in s.triples().iter().take(50) {
            let mcq = b.build(t, 0, &mut rng);
            let gold = s.entity_name(t.tail);
            assert_eq!(mcq.answer(), gold);
            // gold appears exactly once
            let count = mcq.options.iter().filter(|o| o.as_str() == gold).count();
            assert_eq!(count, 1);
            // head never offered as an option
            assert!(mcq.options.iter().all(|o| o != s.entity_name(t.head)));
        }
    }

    #[test]
    fn correct_position_is_shuffled() {
        let s = store();
        let b = McqBuilder::new(&s);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut positions = std::collections::HashSet::new();
        for &t in s.triples().iter().take(40) {
            positions.insert(b.build(t, 0, &mut rng).correct);
        }
        assert!(positions.len() >= 3, "answers should land in varied slots");
    }

    #[test]
    fn question_uses_requested_template() {
        let s = store();
        let b = McqBuilder::new(&s);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let t = s.triples()[0];
        let q0 = b.build(t, 0, &mut rng).question;
        let q3 = b.build(t, 3, &mut rng).question;
        assert_ne!(q0, q3);
        assert!(q0.starts_with("what is the"));
    }

    #[test]
    fn deterministic_given_seed() {
        let s = store();
        let b = McqBuilder::new(&s);
        let t = s.triples()[5];
        let a = b.build(t, 1, &mut ChaCha8Rng::seed_from_u64(9));
        let c = b.build(t, 1, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a.options, c.options);
        assert_eq!(a.correct, c.correct);
    }
}
