//! Instruction prompt formatting and answer extraction.
//!
//! Mirrors the paper's protocol (Table 6): questions are wrapped in an
//! instruction scaffold, the model generates free text, and the chosen option
//! is extracted from the generation — responses with no extractable option
//! count as incorrect. The scaffold here is a terse analog of the paper's
//! Alpaca preamble, sized for the CPU-scale base model (DESIGN.md §2).

use crate::mcq::Mcq;

/// The four option-letter tokens. Parentheses keep them distinct from the
/// article "a" in the word-level vocabulary.
pub const OPTION_TOKENS: [&str; 4] = ["(a)", "(b)", "(c)", "(d)"];

/// Option token for index 0–3.
pub fn option_token(i: usize) -> &'static str {
    OPTION_TOKENS[i]
}

/// Formats an MCQ into the instruction prompt the model is queried with.
pub fn format_mcq_prompt(mcq: &Mcq) -> String {
    format!(
        "question : {} options : (a) {} (b) {} (c) {} (d) {} answer :",
        mcq.question, mcq.options[0], mcq.options[1], mcq.options[2], mcq.options[3]
    )
}

/// The gold completion for QA training: option letter followed by the answer
/// text, e.g. `"(c) acute osteoma"`.
pub fn gold_completion(mcq: &Mcq) -> String {
    format!("{} {}", option_token(mcq.correct), mcq.answer())
}

/// Formats a yes/no question prompt.
pub fn format_yesno_prompt(question: &str) -> String {
    format!("question : {question} options : yes no answer :")
}

/// Extracts the chosen option index from generated text — the reproduction's
/// analog of the paper's regex extraction. Returns the first option token
/// found, or `None` (counted as incorrect, per the paper).
pub fn extract_option(generated: &str) -> Option<usize> {
    for word in crate::tokenizer::split_words(generated) {
        if let Some(i) = OPTION_TOKENS.iter().position(|&t| t == word) {
            return Some(i);
        }
    }
    None
}

/// Extracts the chosen option by matching the generated *answer text* against
/// the option texts (token-overlap F1), falling back to option-letter
/// extraction when no text overlaps.
///
/// Rationale (DESIGN.md §2): the paper's regex extraction works because
/// LLaMa-2's option-letter binding is reliable; the CPU-scale substrate
/// communicates its choice most reliably through the answer text it
/// generates, so extraction matches on that first. Ambiguous generations
/// (no overlap with any option, no letter) return `None` and count as
/// incorrect, exactly like the paper's unparseable outputs.
pub fn extract_choice(generated: &str, options: &[String; 4]) -> Option<usize> {
    let gen_words = crate::tokenizer::split_words(generated);
    let mut best: Option<(usize, f32)> = None;
    for (i, opt) in options.iter().enumerate() {
        let opt_words = crate::tokenizer::split_words(opt);
        let overlap = token_overlap_f1(&gen_words, &opt_words);
        if overlap > 0.0 && best.is_none_or(|(_, b)| overlap > b) {
            best = Some((i, overlap));
        }
    }
    best.map(|(i, _)| i).or_else(|| extract_option(generated))
}

fn token_overlap_f1(pred: &[String], gold: &[String]) -> f32 {
    if pred.is_empty() || gold.is_empty() {
        return 0.0;
    }
    let mut counts = std::collections::HashMap::new();
    for w in gold {
        *counts.entry(w.as_str()).or_insert(0usize) += 1;
    }
    let mut overlap = 0usize;
    for w in pred {
        if let Some(c) = counts.get_mut(w.as_str()) {
            if *c > 0 {
                *c -= 1;
                overlap += 1;
            }
        }
    }
    if overlap == 0 {
        return 0.0;
    }
    let p = overlap as f32 / pred.len() as f32;
    let r = overlap as f32 / gold.len() as f32;
    2.0 * p * r / (p + r)
}

/// Extracts a yes/no answer from generated text.
pub fn extract_yesno(generated: &str) -> Option<bool> {
    for word in crate::tokenizer::split_words(generated) {
        match word.as_str() {
            "yes" => return Some(true),
            "no" => return Some(false),
            _ => {}
        }
    }
    None
}

/// All scaffold words any prompt can emit — for vocabulary closure.
pub fn vocabulary_lines() -> Vec<String> {
    vec![
        "question : options : (a) (b) (c) (d) answer : yes no".to_string(),
        "context : true false maybe".to_string(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use infuserki_kg::{EntityId, RelationId, Triple};

    fn mcq() -> Mcq {
        Mcq {
            question: "what is the has symptom of chronic cardiopathy ?".into(),
            options: [
                "acute osteoma".into(),
                "benign neuritis".into(),
                "focal myoma".into(),
                "latent dermatosis".into(),
            ],
            correct: 2,
            triple: Triple::new(EntityId(0), RelationId(0), EntityId(1)),
            template_idx: 0,
        }
    }

    #[test]
    fn prompt_contains_all_options_in_order() {
        let p = format_mcq_prompt(&mcq());
        let a = p.find("(a) acute osteoma").unwrap();
        let b = p.find("(b) benign neuritis").unwrap();
        let c = p.find("(c) focal myoma").unwrap();
        let d = p.find("(d) latent dermatosis").unwrap();
        assert!(a < b && b < c && c < d);
        assert!(p.ends_with("answer :"));
    }

    #[test]
    fn gold_completion_has_letter_and_text() {
        assert_eq!(gold_completion(&mcq()), "(c) focal myoma");
    }

    #[test]
    fn extract_option_finds_first_letter() {
        assert_eq!(extract_option("(b) benign neuritis"), Some(1));
        assert_eq!(extract_option("i think (d) is right"), Some(3));
        assert_eq!(extract_option("no idea"), None);
        // the article "a" must not be mistaken for option (a)
        assert_eq!(extract_option("a hard question"), None);
    }

    #[test]
    fn extract_choice_matches_answer_text() {
        let m = mcq();
        assert_eq!(extract_choice("(c) focal myoma", &m.options), Some(2));
        // Text beats a collapsed wrong letter — the substrate's failure mode.
        assert_eq!(extract_choice("(a) focal myoma", &m.options), Some(2));
        // Partial overlap still resolves to the best option.
        assert_eq!(extract_choice("myoma", &m.options), Some(2));
        // No text overlap: falls back to the letter.
        assert_eq!(extract_choice("(d) something else", &m.options), Some(3));
        // Nothing extractable.
        assert_eq!(extract_choice("unsure", &m.options), None);
    }

    #[test]
    fn extract_choice_prefers_strongest_overlap() {
        let m = mcq();
        // "acute osteoma" (option a) fully matched beats "benign" partial.
        assert_eq!(extract_choice("acute osteoma benign", &m.options), Some(0));
    }

    #[test]
    fn extract_yesno() {
        assert_eq!(super::extract_yesno("yes , certainly"), Some(true));
        assert_eq!(super::extract_yesno("i say no"), Some(false));
        assert_eq!(super::extract_yesno("maybe"), None);
    }

    #[test]
    fn yesno_prompt_shape() {
        let p = format_yesno_prompt("is x the y of z ?");
        assert!(p.starts_with("question :"));
        assert!(p.contains("options : yes no"));
    }
}
