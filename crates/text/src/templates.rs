//! Per-relation QA templates and knowledge statements.
//!
//! The paper prompts GPT-4 (Appendix A.1) for five question templates and one
//! knowledge statement per relation; templates #1–#2 are used for training,
//! #3–#5 are held out to measure generality (F1_T3..T5). GPT-4 was only the
//! template *author*, so this reproduction substitutes a deterministic
//! factory with five distinct surface frames — the properties the evaluation
//! needs (answer-preserving paraphrases; a seen/unseen split) hold by
//! construction.
//!
//! Statements additionally track the word-index spans of the head and tail
//! entity mentions, which the RC training phase (Eq. 9) pools adapter
//! outputs over.

use serde::{Deserialize, Serialize};

/// Number of QA templates per relation (paper: 5; #1–#2 seen, #3–#5 unseen).
pub const N_QA_TEMPLATES: usize = 5;

/// Indices of the templates used during QA training.
pub const SEEN_TEMPLATES: [usize; 2] = [0, 1];

/// Indices of the held-out templates.
pub const UNSEEN_TEMPLATES: [usize; 3] = [2, 3, 4];

/// A filled knowledge statement with entity-mention spans (word indices into
/// the whitespace/punctuation tokenization of `text`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilledStatement {
    /// The statement text, e.g. `"the finding site of X is Y ."`.
    pub text: String,
    /// Word-index range of the head entity mention.
    pub head_span: (usize, usize),
    /// Word-index range of the tail entity mention.
    pub tail_span: (usize, usize),
}

/// Deterministic template factory.
///
/// Stateless: every method derives text from the relation name (underscores
/// normalized to spaces) so UMLS-style (`"has finding site"`) and
/// MetaQA-style (`"directed_by"`) relations share one code path.
#[derive(Debug, Clone, Copy, Default)]
pub struct TemplateSet;

impl TemplateSet {
    /// Normalizes a relation name for surface text.
    pub fn relation_phrase(relation: &str) -> String {
        relation.replace('_', " ")
    }

    /// The question for `template_idx ∈ 0..5`, with the subject filled in.
    ///
    /// # Panics
    /// Panics if `template_idx >= N_QA_TEMPLATES`.
    pub fn question(relation: &str, subject: &str, template_idx: usize) -> String {
        let rel = Self::relation_phrase(relation);
        match template_idx {
            0 => format!("what is the {rel} of {subject} ?"),
            1 => format!("for {subject} , identify the {rel} ."),
            2 => format!("regarding {subject} , which choice gives the {rel} ?"),
            3 => format!("{subject} is connected by {rel} to which entity ?"),
            4 => format!("select the correct {rel} for {subject} ."),
            _ => panic!("template index {template_idx} out of range"),
        }
    }

    /// A yes/no probe: "is OBJECT the REL of SUBJECT ?" — used for the small
    /// yes/no QA mix the paper adds to improve question-type generality.
    pub fn yesno_question(relation: &str, subject: &str, object: &str) -> String {
        let rel = Self::relation_phrase(relation);
        format!("is {object} the {rel} of {subject} ?")
    }

    /// The knowledge statement with head/tail mention spans.
    pub fn statement(relation: &str, subject: &str, object: &str) -> FilledStatement {
        let rel = Self::relation_phrase(relation);
        // "the {rel} of {subject} is {object} ."
        let rel_words = word_count(&rel);
        let subj_words = word_count(subject);
        let obj_words = word_count(object);
        let head_start = 1 + rel_words + 1; // "the" + rel + "of"
        let head_span = (head_start, head_start + subj_words);
        let tail_start = head_span.1 + 1; // "is"
        let tail_span = (tail_start, tail_start + obj_words);
        FilledStatement {
            text: format!("the {rel} of {subject} is {object} ."),
            head_span,
            tail_span,
        }
    }

    /// All words any template can emit for `relation` — for vocabulary
    /// closure when building the tokenizer.
    pub fn vocabulary_lines(relation: &str) -> Vec<String> {
        let mut lines: Vec<String> = (0..N_QA_TEMPLATES)
            .map(|i| Self::question(relation, "x", i))
            .collect();
        lines.push(Self::yesno_question(relation, "x", "y"));
        lines.push(Self::statement(relation, "x", "y").text);
        lines
    }
}

fn word_count(s: &str) -> usize {
    crate::tokenizer::split_words(s).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::split_words;

    #[test]
    fn five_distinct_templates() {
        let qs: Vec<String> = (0..N_QA_TEMPLATES)
            .map(|i| TemplateSet::question("has finding site", "chronic cardiopathy", i))
            .collect();
        for i in 0..qs.len() {
            for j in i + 1..qs.len() {
                assert_ne!(qs[i], qs[j]);
            }
        }
        assert!(qs[0].contains("chronic cardiopathy"));
    }

    #[test]
    fn underscore_relations_normalized() {
        let q = TemplateSet::question("directed_by", "the silent horizon", 0);
        assert!(q.contains("directed by"));
        assert!(!q.contains('_'));
    }

    #[test]
    fn statement_spans_point_at_mentions() {
        let st = TemplateSet::statement("has finding site", "chronic cardiopathy", "acute osteoma");
        let words = split_words(&st.text);
        assert_eq!(
            &words[st.head_span.0..st.head_span.1],
            &["chronic", "cardiopathy"]
        );
        assert_eq!(
            &words[st.tail_span.0..st.tail_span.1],
            &["acute", "osteoma"]
        );
    }

    #[test]
    fn statement_spans_with_multiword_entities_and_numbers() {
        let st = TemplateSet::statement("release_year", "the crimson empire", "1987");
        let words = split_words(&st.text);
        assert_eq!(
            &words[st.head_span.0..st.head_span.1],
            &["the", "crimson", "empire"]
        );
        assert_eq!(&words[st.tail_span.0..st.tail_span.1], &["1987"]);
    }

    #[test]
    fn yesno_contains_both_entities() {
        let q = TemplateSet::yesno_question("treats", "aspirin", "headache");
        assert!(q.contains("aspirin") && q.contains("headache"));
        assert!(q.ends_with('?'));
    }

    #[test]
    fn seen_unseen_partition() {
        let mut all: Vec<usize> = SEEN_TEMPLATES
            .iter()
            .chain(&UNSEEN_TEMPLATES)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn vocabulary_lines_cover_all_frames() {
        let lines = TemplateSet::vocabulary_lines("has symptom");
        assert_eq!(lines.len(), N_QA_TEMPLATES + 2);
    }
}
