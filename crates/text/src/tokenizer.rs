//! Closed-vocabulary word-level tokenizer.
//!
//! The synthetic universe (entity names, templates, prompt scaffolding) is
//! generated from finite word pools, so a word-level vocabulary is complete
//! by construction; `<unk>` exists only as a safety valve and is asserted
//! unused in the experiment pipelines.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Id of the `<unk>` token.
pub const UNK: usize = 0;
/// Id of the `<eos>` end-of-sequence token.
pub const EOS: usize = 1;

/// Word-level tokenizer with punctuation isolation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tokenizer {
    words: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, usize>,
}

impl Tokenizer {
    /// Builds a vocabulary from an iterator of texts. Token order is
    /// first-seen, after the reserved `<unk>`/`<eos>` slots.
    pub fn build<'a>(texts: impl IntoIterator<Item = &'a str>) -> Self {
        let mut tok = Tokenizer {
            words: vec!["<unk>".into(), "<eos>".into()],
            index: HashMap::new(),
        };
        tok.index.insert("<unk>".into(), UNK);
        tok.index.insert("<eos>".into(), EOS);
        for text in texts {
            for w in split_words(text) {
                tok.add_word(&w);
            }
        }
        tok
    }

    fn add_word(&mut self, w: &str) -> usize {
        if let Some(&id) = self.index.get(w) {
            return id;
        }
        let id = self.words.len();
        self.words.push(w.to_string());
        self.index.insert(w.to_string(), id);
        id
    }

    /// Extends the vocabulary from further texts (idempotent).
    pub fn extend<'a>(&mut self, texts: impl IntoIterator<Item = &'a str>) {
        for text in texts {
            for w in split_words(text) {
                self.add_word(&w);
            }
        }
    }

    /// Rebuilds the word→id index after deserialization.
    pub fn rebuild_index(&mut self) {
        self.index = self
            .words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i))
            .collect();
    }

    /// Encodes text to token ids; unknown words map to [`UNK`].
    pub fn encode(&self, text: &str) -> Vec<usize> {
        split_words(text)
            .into_iter()
            .map(|w| self.index.get(&w).copied().unwrap_or(UNK))
            .collect()
    }

    /// Encodes, asserting the text is fully in-vocabulary (experiment paths).
    ///
    /// # Panics
    /// Panics naming the first out-of-vocabulary word.
    pub fn encode_strict(&self, text: &str) -> Vec<usize> {
        split_words(text)
            .into_iter()
            .map(|w| {
                *self
                    .index
                    .get(&w)
                    .unwrap_or_else(|| panic!("out-of-vocabulary word: '{w}'"))
            })
            .collect()
    }

    /// Decodes ids back to a space-joined string.
    pub fn decode(&self, ids: &[usize]) -> String {
        ids.iter()
            .map(|&i| self.words.get(i).map(String::as_str).unwrap_or("<bad>"))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Id of a single word, if in vocabulary.
    pub fn word_id(&self, w: &str) -> Option<usize> {
        self.index.get(w).copied()
    }

    /// The word for an id.
    pub fn word(&self, id: usize) -> Option<&str> {
        self.words.get(id).map(String::as_str)
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.words.len()
    }
}

/// Splits text into lowercase words, isolating punctuation as tokens.
pub fn split_words(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_whitespace() {
            flush(&mut cur, &mut out);
        } else if matches!(ch, '?' | '.' | ',' | ':' | ';' | '!') {
            flush(&mut cur, &mut out);
            out.push(ch.to_string());
        } else {
            cur.extend(ch.to_lowercase());
        }
    }
    flush(&mut cur, &mut out);
    out
}

fn flush(cur: &mut String, out: &mut Vec<String>) {
    if !cur.is_empty() {
        out.push(std::mem::take(cur));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_isolates_punctuation_and_lowercases() {
        assert_eq!(
            split_words("What is Aspirin, exactly?"),
            vec!["what", "is", "aspirin", ",", "exactly", "?"]
        );
    }

    #[test]
    fn parenthesized_option_tokens_survive() {
        // '(' and ')' are not split, so "(a)" is one token.
        assert_eq!(split_words("answer: (a)"), vec!["answer", ":", "(a)"]);
    }

    #[test]
    fn encode_decode_round_trip() {
        let t = Tokenizer::build(["the silent horizon", "who directed the silent horizon ?"]);
        let ids = t.encode_strict("who directed the silent horizon ?");
        assert_eq!(t.decode(&ids), "who directed the silent horizon ?");
    }

    #[test]
    fn unknown_maps_to_unk() {
        let t = Tokenizer::build(["hello world"]);
        let ids = t.encode("hello mars");
        assert_eq!(ids[1], UNK);
    }

    #[test]
    #[should_panic(expected = "out-of-vocabulary")]
    fn encode_strict_panics_on_oov() {
        let t = Tokenizer::build(["hello"]);
        t.encode_strict("goodbye");
    }

    #[test]
    fn extend_is_idempotent() {
        let mut t = Tokenizer::build(["a b c"]);
        let before = t.vocab_size();
        t.extend(["a b c"]);
        assert_eq!(t.vocab_size(), before);
        t.extend(["d"]);
        assert_eq!(t.vocab_size(), before + 1);
    }

    #[test]
    fn reserved_ids_are_stable() {
        let t = Tokenizer::build(["x"]);
        assert_eq!(t.word(UNK), Some("<unk>"));
        assert_eq!(t.word(EOS), Some("<eos>"));
        assert_eq!(t.word_id("x"), Some(2));
    }

    #[test]
    fn serde_round_trip_with_rebuild() {
        let t = Tokenizer::build(["alpha beta gamma"]);
        let json = serde_json::to_string(&t).unwrap();
        let mut back: Tokenizer = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(
            back.encode_strict("beta gamma"),
            t.encode_strict("beta gamma")
        );
    }
}
