//! Levenshtein edit distance — the paper's distractor-selection metric
//! (Appendix A.1: first distractor minimizes edit distance to the head
//! entity; the random distractors are drawn from the ten candidates nearest
//! to the correct answer).

/// Character-level Levenshtein distance (two-row dynamic program).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Indices of `pool` sorted by ascending edit distance to `target`
/// (stable: ties keep pool order).
pub fn rank_by_distance(target: &str, pool: &[&str]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..pool.len()).collect();
    let dists: Vec<usize> = pool.iter().map(|s| levenshtein(target, s)).collect();
    idx.sort_by_key(|&i| dists[i]);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn rank_orders_by_distance() {
        let pool = ["cardiopathy", "neuropathy", "osteoma"];
        let r = rank_by_distance("cardiopathy", &pool);
        assert_eq!(r[0], 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn identity_axiom(s in "[a-z]{0,12}") {
            prop_assert_eq!(levenshtein(&s, &s), 0);
        }

        #[test]
        fn symmetry_axiom(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }

        #[test]
        fn triangle_inequality(a in "[a-z]{0,8}", b in "[a-z]{0,8}", c in "[a-z]{0,8}") {
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }

        #[test]
        fn bounded_by_longer_length(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
            let d = levenshtein(&a, &b);
            prop_assert!(d <= a.len().max(b.len()));
            prop_assert!(d >= a.len().abs_diff(b.len()));
        }
    }
}
