//! # infuserki-text
//!
//! The text layer of the InfuserKI reproduction: a closed-vocabulary
//! word-level tokenizer, per-relation QA/statement templates (standing in for
//! the paper's GPT-4-generated templates, Appendix A.1), multiple-choice
//! question construction with edit-distance distractors, and the instruction
//! prompt format (Table 6).

pub mod distance;
pub mod mcq;
pub mod prompts;
pub mod templates;
pub mod tokenizer;

pub use distance::levenshtein;
pub use mcq::{Mcq, McqBuilder};
pub use prompts::{extract_option, format_mcq_prompt, option_token, OPTION_TOKENS};
pub use templates::{FilledStatement, TemplateSet, N_QA_TEMPLATES};
pub use tokenizer::Tokenizer;
