//! # infuserki — workspace facade
//!
//! Re-exports the public API of every crate in the InfuserKI reproduction so
//! examples and downstream users can depend on a single crate.

pub use infuserki_baselines as baselines;
pub use infuserki_core as core;
pub use infuserki_eval as eval;
pub use infuserki_ingest as ingest;
pub use infuserki_kg as kg;
pub use infuserki_nn as nn;
pub use infuserki_router as router;
pub use infuserki_serve as serve;
pub use infuserki_tensor as tensor;
pub use infuserki_text as text;
