#!/usr/bin/env bash
# Records the full experiment suite at the given scale (default: quick) and
# assembles results/all_experiments.md. Pre-trained bases are cached in
# artifacts/, so reruns are much faster.
set -euo pipefail
SCALE="${1:-quick}"
SEED="${2:-42}"
cargo build --release -p infuserki-bench --bins
exec ./target/release/run_all --scale "$SCALE" --seed "$SEED"
