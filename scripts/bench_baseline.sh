#!/usr/bin/env bash
# Re-records results/bench_baseline.json, the committed reference the CI
# bench-regression job compares against. Run this (and commit the result)
# after an intentional performance change; the gate fails any later run
# whose throughput drops more than 25% below these numbers.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release -p infuserki-bench --bin perf_suite
./target/release/perf_suite --write results/bench_baseline.json
