//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, this shim serializes through an
//! owned JSON-like [`Value`] tree: `Serialize` lowers a type to a [`Value`],
//! `Deserialize` rebuilds it from one. The companion `serde_derive` shim
//! generates both impls for plain structs and fieldless enums, honouring
//! `#[serde(skip)]` and `#[serde(skip, default = "path")]`. The `serde_json`
//! shim renders and parses the tree as real JSON text.

use std::collections::{BTreeMap, HashMap};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Dynamically-typed serialization tree (JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (integers are exact up to 2^53).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization failure.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Error for an absent struct field.
    pub fn missing(field: &str) -> Self {
        DeError(format!("missing field `{field}`"))
    }

    /// Error for a value of the wrong JSON type.
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        DeError(format!("expected {what}, found {kind}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    /// Lowers `self` to a serialization tree.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a serialization tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls -------------------------------------------------------

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Num(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_f64().ok_or_else(|| DeError::expected("integer", v))?;
                if n.fract() != 0.0 {
                    return Err(DeError(format!("expected integer, found {n}")));
                }
                Ok(n as $t)
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|n| n as f32)
            .ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("char", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError(format!("expected single char, found {s:?}"))),
        }
    }
}

// ---- container impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of length {N}, found {n}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let expect = [$($idx),+].len();
                        if items.len() != expect {
                            return Err(DeError(format!(
                                "expected {expect}-tuple, found array of {}",
                                items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(DeError::expected("tuple (array)", v)),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Map keys must render as JSON object keys (strings).
pub trait MapKey: Sized {
    /// Key as a JSON object key.
    fn to_key(&self) -> String;
    /// Key parsed back from a JSON object key.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| DeError(format!("bad integer key {s:?}")))
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + std::hash::Hash + Eq, V: Serialize, S: std::hash::BuildHasher> Serialize
    for HashMap<K, V, S>
{
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic across hash seeds.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: MapKey + std::hash::Hash + Eq, V: Deserialize, S: std::hash::BuildHasher + Default>
    Deserialize for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
                .collect(),
            _ => Err(DeError::expected("object", v)),
        }
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
                .collect(),
            _ => Err(DeError::expected("object", v)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn vec_and_option_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let some = Some(7usize);
        assert_eq!(Option::<usize>::from_value(&some.to_value()).unwrap(), some);
        let none: Option<usize> = None;
        assert_eq!(Option::<usize>::from_value(&none.to_value()).unwrap(), none);
    }

    #[test]
    fn map_round_trip_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        let v = m.to_value();
        if let Value::Object(fields) = &v {
            assert_eq!(fields[0].0, "a");
        } else {
            panic!("not an object");
        }
        assert_eq!(HashMap::<String, u32>::from_value(&v).unwrap(), m);
    }

    #[test]
    fn integer_rejects_fraction() {
        assert!(u32::from_value(&Value::Num(1.5)).is_err());
    }

    #[test]
    fn tuple_round_trip() {
        let t = (1u32, "x".to_string());
        assert_eq!(<(u32, String)>::from_value(&t.to_value()).unwrap(), t);
    }
}
