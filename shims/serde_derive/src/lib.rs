//! Offline stand-in for `serde_derive`.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls (the shim's
//! value-tree flavour) by walking the raw `proc_macro::TokenStream` — no
//! `syn`/`quote`. Supported shapes, which cover every derive in this
//! workspace:
//!
//! - named-field structs, honouring `#[serde(skip)]` and
//!   `#[serde(skip, default = "path")]` (skipped fields are omitted on
//!   serialize and rebuilt via `Default::default()` or `path()`),
//! - tuple structs (newtypes serialize transparently; wider tuples as arrays),
//! - unit structs,
//! - enums with unit variants only (serialized as the variant-name string).
//!
//! Generics and data-carrying enum variants are rejected with a clear panic
//! at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One struct field as seen by the generators.
struct Field {
    /// Field name; `None` for tuple-struct fields.
    name: Option<String>,
    /// `#[serde(skip)]` present.
    skip: bool,
    /// `default = "path"` payload of a skip attribute.
    default_path: Option<String>,
}

/// Parsed derive input.
enum Shape {
    Named(Vec<Field>),
    Tuple(Vec<Field>),
    Unit,
    UnitEnum(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---- parsing ---------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    // Skip leading attributes (doc comments included) and visibility.
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    break kw;
                }
                panic!("serde_derive shim: unexpected token `{kw}` before struct/enum");
            }
            other => panic!("serde_derive shim: unexpected input {other:?}"),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }
    let shape = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "enum" {
                Shape::UnitEnum(parse_variants(g.stream(), &name))
            } else {
                Shape::Named(parse_named_fields(g.stream()))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(parse_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
        other => panic!("serde_derive shim: unexpected body for `{name}`: {other:?}"),
    };
    Input { name, shape }
}

/// Consumes leading `#[...]` attributes, returning (skip, default_path).
fn take_attrs(
    iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
) -> (bool, Option<String>) {
    let mut skip = false;
    let mut default_path = None;
    while let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() != '#' {
            break;
        }
        iter.next();
        let Some(TokenTree::Group(g)) = iter.next() else {
            panic!("serde_derive shim: `#` not followed by attribute group");
        };
        let mut inner = g.stream().into_iter();
        let is_serde = matches!(
            inner.next(),
            Some(TokenTree::Ident(id)) if id.to_string() == "serde"
        );
        if !is_serde {
            continue; // doc comment or foreign attribute
        }
        let Some(TokenTree::Group(args)) = inner.next() else {
            continue;
        };
        let mut args = args.stream().into_iter().peekable();
        while let Some(tok) = args.next() {
            match tok {
                TokenTree::Ident(id) if id.to_string() == "skip" => skip = true,
                TokenTree::Ident(id) if id.to_string() == "default" => {
                    // default = "path"
                    args.next(); // `=`
                    if let Some(TokenTree::Literal(lit)) = args.next() {
                        let s = lit.to_string();
                        default_path = Some(s.trim_matches('"').to_string());
                    }
                }
                TokenTree::Punct(_) => {}
                other => {
                    panic!("serde_derive shim: unsupported serde attribute token {other:?}")
                }
            }
        }
    }
    (skip, default_path)
}

/// Skips an optional `pub` / `pub(...)` visibility prefix.
fn take_vis(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

/// Skips type tokens up to a top-level `,` (tracks `<...>` nesting).
fn skip_type(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut depth = 0i32;
    while let Some(tok) = iter.peek() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    iter.next();
                    return;
                }
                _ => {}
            }
        }
        iter.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let (skip, default_path) = take_attrs(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        take_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, got {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after `{name}`, got {other:?}"),
        }
        skip_type(&mut iter);
        fields.push(Field {
            name: Some(name),
            skip,
            default_path,
        });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let (skip, default_path) = take_attrs(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        if skip {
            panic!("serde_derive shim: #[serde(skip)] on tuple fields is not supported");
        }
        take_vis(&mut iter);
        skip_type(&mut iter);
        fields.push(Field {
            name: None,
            skip,
            default_path,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream, enum_name: &str) -> Vec<String> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let _ = take_attrs(&mut iter);
        match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
            other => panic!("serde_derive shim: bad variant in `{enum_name}`: {other:?}"),
        }
        match iter.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Group(_)) => panic!(
                "serde_derive shim: enum `{enum_name}` has a data-carrying variant; \
                 only unit variants are supported"
            ),
            other => panic!("serde_derive shim: unexpected token in `{enum_name}`: {other:?}"),
        }
    }
    variants
}

// ---- code generation -------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let mut s =
                String::from("let mut __fields: Vec<(String, serde::Value)> = Vec::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                let n = f.name.as_ref().unwrap();
                s.push_str(&format!(
                    "__fields.push((\"{n}\".to_string(), \
                     serde::Serialize::to_value(&self.{n})));\n"
                ));
            }
            s.push_str("serde::Value::Object(__fields)");
            s
        }
        Shape::Tuple(fields) if fields.len() == 1 => {
            "serde::Serialize::to_value(&self.0)".to_string()
        }
        Shape::Tuple(fields) => {
            let items: Vec<String> = (0..fields.len())
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Unit => "serde::Value::Null".to_string(),
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => serde::Value::Str(\"{v}\".to_string())"))
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{\n{body}\n}}\n}}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let mut inits = Vec::new();
            for f in fields {
                let n = f.name.as_ref().unwrap();
                if f.skip {
                    let init = match &f.default_path {
                        Some(path) => format!("{path}()"),
                        None => "::std::default::Default::default()".to_string(),
                    };
                    inits.push(format!("{n}: {init}"));
                } else {
                    inits.push(format!(
                        "{n}: serde::Deserialize::from_value(__v.get_field(\"{n}\")\
                         .ok_or_else(|| serde::DeError::missing(\"{n}\"))?)?"
                    ));
                }
            }
            format!(
                "if !matches!(__v, serde::Value::Object(_)) {{\n\
                 return Err(serde::DeError::expected(\"object\", __v));\n}}\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(fields) if fields.len() == 1 => {
            format!("Ok({name}(serde::Deserialize::from_value(__v)?))")
        }
        Shape::Tuple(fields) => {
            let n = fields.len();
            let gets: Vec<String> = (0..n)
                .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = match __v {{\n\
                 serde::Value::Array(items) if items.len() == {n} => items,\n\
                 other => return Err(serde::DeError::expected(\"array of {n}\", other)),\n}};\n\
                 Ok({name}({}))",
                gets.join(", ")
            )
        }
        Shape::Unit => format!("Ok({name})"),
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v})"))
                .collect();
            format!(
                "match __v {{\n\
                 serde::Value::Str(s) => match s.as_str() {{\n{},\n\
                 other => Err(serde::DeError(format!(\
                 \"unknown variant `{{other}}` for {name}\"))),\n}},\n\
                 other => Err(serde::DeError::expected(\"string variant\", other)),\n}}",
                arms.join(",\n")
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_value(__v: &serde::Value) -> Result<Self, serde::DeError> {{\n{body}\n}}\n}}"
    )
}
