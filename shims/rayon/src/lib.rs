//! Offline stand-in for `rayon` covering the subset this workspace uses:
//! `slice.par_iter().map(f).{collect, sum, reduce}`.
//!
//! Work is split into contiguous chunks executed on `std::thread::scope`
//! threads — one chunk per logical CPU (capped by `RAYON_NUM_THREADS` or
//! `INFUSERKI_THREADS`). Results are recombined **in input order**, and
//! `reduce` folds sequentially over the ordered results, so any
//! floating-point combining is deterministic for a given thread count and
//! identical to the serial result when one thread is used.

use std::cell::Cell;
use std::sync::OnceLock;

std::thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`]; 0 = unset.
    static POOL_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads used for parallel pipelines.
pub fn current_num_threads() -> usize {
    let o = POOL_OVERRIDE.with(Cell::get);
    if o != 0 {
        return o;
    }
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        for var in ["RAYON_NUM_THREADS", "INFUSERKI_THREADS"] {
            if let Ok(v) = std::env::var(var) {
                if let Ok(n) = v.trim().parse::<usize>() {
                    return n.max(1);
                }
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// Builder for a scoped thread-count override (rayon-compatible shape).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with the default (env/detected) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count; 0 keeps the default resolution.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Infallible here; the `Result` mirrors rayon's API.
    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped thread-count override. Unlike real rayon this shim spawns scoped
/// threads per pipeline rather than keeping a pool alive; `install` simply
/// pins [`current_num_threads`] for the closure (on this thread), which is
/// all the deterministic chunked splitter consults.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count installed, restoring the
    /// previous override afterwards (panic-safe).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(POOL_OVERRIDE.with(Cell::get));
        POOL_OVERRIDE.with(|c| c.set(self.num_threads));
        f()
    }
}

/// Maps `items` through `f` on worker threads, preserving input order.
fn par_map_vec<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let threads = current_num_threads();
    if threads <= 1 || items.len() < 2 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let per_chunk: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon shim worker panicked"))
            .collect()
    });
    per_chunk.into_iter().flatten().collect()
}

/// A (possibly mapped) parallel pipeline; terminal ops materialize it.
pub trait ParallelIterator: Sized {
    /// Element type produced by the pipeline.
    type Item: Send;

    /// Runs the pipeline, returning all items in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Lazily maps each element.
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// Ordered fold with an identity constructor (rayon-compatible shape).
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item,
        OP: Fn(Self::Item, Self::Item) -> Self::Item,
    {
        self.run().into_iter().fold(identity(), op)
    }

    /// Sums all items in input order.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.run().into_iter().sum()
    }

    /// Collects all items in input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Keeps items satisfying the predicate (order preserved).
    fn filter<P: Fn(&Self::Item) -> bool + Sync>(self, pred: P) -> Filter<Self, P> {
        Filter { base: self, pred }
    }
}

/// Parallel view over a slice.
pub struct ParSlice<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParSlice<'a, T> {
    type Item = &'a T;

    fn run(self) -> Vec<&'a T> {
        self.slice.iter().collect()
    }
}

/// Lazily mapped pipeline stage.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        par_map_vec(self.base.run(), &self.f)
    }
}

/// Lazily filtered pipeline stage.
pub struct Filter<B, P> {
    base: B,
    pred: P,
}

impl<B, P> ParallelIterator for Filter<B, P>
where
    B: ParallelIterator,
    P: Fn(&B::Item) -> bool + Sync,
{
    type Item = B::Item;

    fn run(self) -> Vec<B::Item> {
        let pred = &self.pred;
        self.base.run().into_iter().filter(|x| pred(x)).collect()
    }
}

/// Parallel view over contiguous sub-slices of a slice.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];

    fn run(self) -> Vec<&'a [T]> {
        self.slice.chunks(self.size).collect()
    }
}

/// Slice-specific parallel entry points (rayon-compatible shape).
pub trait ParallelSlice<T: Sync> {
    /// Starts a pipeline over contiguous chunks of `size` elements (the last
    /// chunk may be shorter), preserving slice order.
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
        assert!(size > 0, "par_chunks: chunk size must be non-zero");
        ParChunks { slice: self, size }
    }
}

/// `&collection → par_iter()` entry point (rayon-compatible shape).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: 'a;
    /// Pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Starts a parallel pipeline borrowing the collection.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;

    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;

    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{IntoParallelRefIterator, ParallelIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<i32> = (0..100).collect();
        let out: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sum_matches_serial() {
        let v: Vec<u64> = (0..1000).collect();
        let s: u64 = v.par_iter().map(|&x| x + 1).sum();
        assert_eq!(s, (1..=1000).sum::<u64>());
    }

    #[test]
    fn reduce_with_identity() {
        let v = vec![1.0f32, 2.0, 3.0];
        let (total, count) = v
            .par_iter()
            .map(|&x| (x, 1usize))
            .reduce(|| (0.0, 0), |(a, n), (b, m)| (a + b, n + m));
        assert_eq!(count, 3);
        assert!((total - 6.0).abs() < 1e-6);
    }

    #[test]
    fn par_chunks_preserves_order_and_raggedness() {
        let v: Vec<i32> = (0..10).collect();
        let sums: Vec<i32> = v.par_chunks(4).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![1 + 2 + 3, 4 + 5 + 6 + 7, 8 + 9]);
    }

    #[test]
    fn install_pins_and_restores_thread_count() {
        let base = crate::current_num_threads();
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        let (inside, result): (usize, Vec<i32>) = pool.install(|| {
            let v: Vec<i32> = (0..20).collect();
            (
                crate::current_num_threads(),
                v.par_iter().map(|&x| x * 2).collect(),
            )
        });
        assert_eq!(inside, 3);
        assert_eq!(result, (0..20).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(crate::current_num_threads(), base);
    }

    #[test]
    fn empty_input_ok() {
        let v: Vec<i32> = vec![];
        let out: Vec<i32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let s: i32 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 0);
    }
}
