//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors the small subset of the `rand 0.8` API it actually uses: the
//! [`RngCore`]/[`Rng`]/[`SeedableRng`] traits, uniform range sampling via
//! [`Rng::gen_range`], and [`seq::SliceRandom::shuffle`]. Streams are
//! deterministic per seed but are not guaranteed to match upstream `rand`
//! bit-for-bit; all reproducibility guarantees in this repo are relative to
//! this implementation.

/// Low-level uniformly-random word source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let w = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a range (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty, $bits:expr, $mant:expr);*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Uniform in [0, 1): top `mant` bits scaled by 2^-mant.
                let u = (rng.next_u64() >> (64 - $mant)) as $t / (1u64 << $mant) as $t;
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}

float_sample_range!(f32, 32, 24; f64, 64, 53);

/// High-level convenience sampling (the user-facing trait).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_range(0.0f64..1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (matching the
    /// rand_core approach) and constructs the generator.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::Rng;

    /// Random slice operations (only `shuffle` is vendored).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Simple process-global generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xorshift64*-based small generator (stand-in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng(u64);

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            let v = u64::from_le_bytes(seed);
            StdRng(if v == 0 { 0x9E37_79B9_7F4A_7C15 } else { v })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[derive(Clone)]
    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            (self.0 >> 33) as u32
        }
    }

    #[test]
    fn gen_range_int_in_bounds() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_range_float_in_bounds() {
        let mut r = Counter(9);
        for _ in 0..1000 {
            let v: f32 = r.gen_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Counter(3);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut r);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let a = rngs::StdRng::seed_from_u64(42).next_u64();
        let b = rngs::StdRng::seed_from_u64(42).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, rngs::StdRng::seed_from_u64(43).next_u64());
    }
}
