//! Offline stand-in for `proptest` covering the subset this workspace uses:
//! the `proptest! { #![proptest_config(...)] #[test] fn f(x in strat) {...} }`
//! macro, `prop_assert!`/`prop_assert_eq!`, numeric range strategies,
//! charclass string strategies (`"[a-z]{0,12}"`), tuple strategies,
//! `collection::vec`, `prop::bool::ANY`, and `prop_map`/`prop_flat_map`.
//!
//! Unlike upstream there is no shrinking: a failing case panics with the
//! sampled inputs' debug representation and its case index. Sampling is
//! deterministic per (test name, case index), so failures reproduce exactly
//! on re-run.
//!
//! Case counts honour two env knobs (read at config construction time):
//! `PROPTEST_CASES` replaces the default of 64 (upstream-compatible), and
//! `PROPTEST_CASES_SCALE` multiplies both the default and any explicit
//! `with_cases(N)` — the deep-fuzz CI workflow sets these to run the same
//! properties at ~10× depth.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A generator of random values for property tests.
    pub trait Strategy {
        /// Type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> MapStrategy<Self, F>
        where
            Self: Sized,
        {
            MapStrategy { base: self, f }
        }

        /// Derives a dependent strategy from each generated value.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(
            self,
            f: F,
        ) -> FlatMapStrategy<Self, F>
        where
            Self: Sized,
        {
            FlatMapStrategy { base: self, f }
        }
    }

    /// Strategy that always yields a clone of the wrapped value (upstream
    /// `Just`): the identity element for tuple/flat-map composition.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct MapStrategy<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMapStrategy<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMapStrategy<S, F> {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.sample(rng)).sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                    self.start + (self.end - self.start) * u
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    /// Charclass string strategy: `"[a-z]{0,12}"`, `"[abc]{4}"`, `"[a-z]"`.
    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            let (chars, min, max) = parse_charclass(self);
            let len = if max > min {
                min + (rng.next_u64() % (max - min + 1) as u64) as usize
            } else {
                min
            };
            (0..len)
                .map(|_| chars[(rng.next_u64() % chars.len() as u64) as usize])
                .collect()
        }
    }

    /// Parses `[class]{m,n}` / `[class]{n}` / `[class]` into (alphabet, m, n).
    fn parse_charclass(pat: &str) -> (Vec<char>, usize, usize) {
        let inner_end = pat
            .find(']')
            .unwrap_or_else(|| panic!("proptest shim: unsupported string pattern {pat:?}"));
        assert!(
            pat.starts_with('['),
            "proptest shim: unsupported string pattern {pat:?}"
        );
        let class: Vec<char> = pat[1..inner_end].chars().collect();
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
                for c in lo..=hi {
                    chars.push(char::from_u32(c).unwrap());
                }
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }
        assert!(!chars.is_empty(), "proptest shim: empty charclass {pat:?}");
        let rest = &pat[inner_end + 1..];
        if rest.is_empty() {
            return (chars, 1, 1);
        }
        let spec = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("proptest shim: unsupported quantifier {rest:?}"));
        match spec.split_once(',') {
            Some((m, n)) => (
                chars,
                m.trim().parse().expect("quantifier min"),
                n.trim().parse().expect("quantifier max"),
            ),
            None => {
                let n: usize = spec.trim().parse().expect("quantifier");
                (chars, n, n)
            }
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident : $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }
}

pub mod test_runner {
    //! Deterministic RNG, config, and failure type for the harness.

    /// Harness configuration (`cases` = iterations per property).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` iterations, scaled by `PROPTEST_CASES_SCALE`
        /// when set (a multiplier for deep-fuzz runs; e.g. `10` turns an
        /// explicit `with_cases(300)` into 3000 cases).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases: cases.saturating_mul(env_u32("PROPTEST_CASES_SCALE", 1).max(1)),
            }
        }
    }

    impl Default for ProptestConfig {
        /// Upstream-compatible: `PROPTEST_CASES` overrides the default case
        /// count (64), and `PROPTEST_CASES_SCALE` multiplies whichever base
        /// applies — CI's deep-fuzz workflow sets these to widen coverage
        /// without code changes.
        fn default() -> Self {
            ProptestConfig {
                cases: env_u32("PROPTEST_CASES", 64)
                    .saturating_mul(env_u32("PROPTEST_CASES_SCALE", 1).max(1)),
            }
        }
    }

    /// Reads an env var as u32, falling back on absence or parse failure.
    fn env_u32(name: &str, default: u32) -> u32 {
        std::env::var(name)
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(default)
    }

    /// A failed property assertion.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// SplitMix64 stream seeded from (test name, case index): deterministic
    /// and reproducible, distinct per property.
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds the stream for one test case.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod collection {
    //! `vec` strategy over a size specification.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Accepted size specifications for [`vec`].
    pub trait SizeRange {
        /// Inclusive (min, max) lengths.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.max > self.min {
                self.min + (rng.next_u64() % (self.max - self.min + 1) as u64) as usize
            } else {
                self.min
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategy (`prop::bool::ANY`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform boolean strategy.
    pub struct Any;

    /// The uniform boolean strategy value.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prop {
    //! `prop::` namespace mirror (`prop::bool::ANY`).
    pub use crate::bool;
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest};
}

/// Declares property tests; see the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                // Sample first, then destructure: `$arg` may be any pattern
                // (e.g. a tuple), so the debug dump is taken from the sampled
                // tuple before binding.
                let __sampled = ($(
                    $crate::strategy::Strategy::sample(&($strat), &mut rng),
                )+);
                let args_debug = format!(
                    concat!(stringify!(($($arg),+)), " = {:?}"),
                    &__sampled
                );
                let ($($arg,)+) = __sampled;
                let result: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    Ok(())
                })();
                if let Err(e) = result {
                    panic!(
                        "proptest case {case}/{total} failed: {e}\n  with {args}",
                        total = cfg.cases,
                        e = e,
                        args = args_debug
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Asserts inside `proptest!` bodies; failure aborts the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..200 {
            let x = Strategy::sample(&(3usize..7), &mut rng);
            assert!((3..7).contains(&x));
            let f = Strategy::sample(&(-2.0f32..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = Strategy::sample(&(5u64..=5), &mut rng);
            assert_eq!(i, 5);
        }
    }

    #[test]
    fn string_charclass() {
        let mut rng = TestRng::for_case("strings", 0);
        for _ in 0..100 {
            let s = Strategy::sample(&"[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let mut rng = TestRng::for_case("vecs", 0);
        let strat = crate::collection::vec(0usize..10, 3..6).prop_map(|v| v.len());
        for _ in 0..50 {
            let n = Strategy::sample(&strat, &mut rng);
            assert!((3..6).contains(&n));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_case() {
        let a = Strategy::sample(&(0u64..1_000_000), &mut TestRng::for_case("d", 7));
        let b = Strategy::sample(&(0u64..1_000_000), &mut TestRng::for_case("d", 7));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_roundtrip(x in 0usize..100, flag in prop::bool::ANY) {
            prop_assert!(x < 100);
            prop_assert_eq!(flag, flag);
        }

        #[test]
        fn flat_map_dependent(pair in (1usize..5).prop_flat_map(|a| (a..5).prop_map(move |b| (a, b)))) {
            prop_assert!(pair.0 <= pair.1);
        }
    }
}
