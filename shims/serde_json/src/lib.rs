//! Offline stand-in for `serde_json` over the serde shim's [`Value`] tree.
//!
//! Numbers are rendered with Rust's shortest-round-trip `f64` formatting, so
//! every `f32` survives text round-trips exactly (`f32 → f64` widening is
//! exact, and parsing the shortest representation back recovers the same
//! `f64`). Non-finite numbers render as `null`, matching upstream.

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_str(s)?;
    Ok(T::from_value(&value)?)
}

// ---- writer ----------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    use std::fmt::Write;
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 && !(n == 0.0 && n.is_sign_negative()) {
        // Integral values print without a fractional part or exponent.
        // Negative zero is excluded: `-0.0 as i64` prints "0", which would
        // come back as +0.0 — the Display arm below renders it as "-0".
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("bad \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn f32_exact_round_trip() {
        for &x in &[
            0.1f32,
            -1.5e-7,
            3.4e38,
            1.0 / 3.0,
            f32::MIN_POSITIVE,
            -0.0,
            2.0,
            -17.0,
        ] {
            let s = to_string(&x).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {s}");
        }
    }

    #[test]
    fn nested_structures() {
        let v = vec![vec![1.0f32, 2.0], vec![3.0]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3]]");
        assert_eq!(from_str::<Vec<Vec<f32>>>(&s).unwrap(), v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![(1u32, "x".to_string()), (2, "y".to_string())];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<(u32, String)>>(&s).unwrap(), v);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>(r#""é😀""#).unwrap(), "é😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("4 2").is_err());
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
    }

    #[test]
    fn non_finite_renders_null() {
        assert_eq!(to_string(&f32::NAN).unwrap(), "null");
    }
}
