//! Offline stand-in for `criterion` covering the subset this workspace uses:
//! `Criterion::default().sample_size(..).warm_up_time(..).measurement_time(..)`,
//! `bench_function` with `Bencher::iter` / `Bencher::iter_batched`, and the
//! `criterion_group!` / `criterion_main!` macros (both forms).
//!
//! Timing model: after a wall-clock warm-up, each sample times a batch of
//! iterations (batch size auto-scaled so one batch takes ≳100 µs) and the
//! harness reports the median, minimum, and maximum per-iteration time.
//! No plots, no statistics beyond that — just honest numbers on stdout.

use std::time::{Duration, Instant};

/// Re-export so call sites can use `criterion::black_box`.
pub use std::hint::black_box;

/// Controls batching for [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state: batches may be large.
    SmallInput,
    /// Large per-iteration state: keep batches small.
    LargeInput,
    /// One setup per timed call.
    PerIteration,
}

/// Benchmark harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Upstream-compatible CLI filtering: the first non-flag argument
        // (`cargo bench -- <substring>`) restricts which benchmarks run.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            filter,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (min 10).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(10);
        self
    }

    /// Wall-clock warm-up before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Wall-clock budget for the sampling phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its timing summary. Skipped when a CLI
    /// filter is set and `name` does not contain it.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            cfg: BenchCfg {
                sample_size: self.sample_size,
                warm_up_time: self.warm_up_time,
                measurement_time: self.measurement_time,
            },
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

struct BenchCfg {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

/// Times a closure under the harness configuration.
pub struct Bencher {
    cfg: BenchCfg,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses, measuring a rough
        // per-iteration cost to size the timed batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.cfg.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        // Size batches so one batch takes ≳100 µs (amortizes timer overhead).
        let batch = ((100_000.0 / per_iter.max(1.0)).ceil() as u64).max(1);

        let meas_start = Instant::now();
        for _ in 0..self.cfg.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            self.samples_ns.push(ns);
            if meas_start.elapsed() > self.cfg.measurement_time {
                break;
            }
        }
    }

    /// Times `routine` over fresh inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.cfg.warm_up_time {
            let input = setup();
            black_box(routine(input));
        }
        let meas_start = Instant::now();
        for _ in 0..self.cfg.sample_size {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            let ns = t0.elapsed().as_nanos() as f64;
            black_box(out);
            self.samples_ns.push(ns);
            if meas_start.elapsed() > self.cfg.measurement_time {
                break;
            }
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        self.samples_ns
            .sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
        let median = self.samples_ns[self.samples_ns.len() / 2];
        let min = self.samples_ns[0];
        let max = *self.samples_ns.last().unwrap();
        println!(
            "{name:<40} median {:>12}  (min {}, max {}, {} samples)",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
            self.samples_ns.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(10));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        });
    }

    #[test]
    fn fmt_ns_scales() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(12_000.0).contains("µs"));
        assert!(fmt_ns(12_000_000.0).contains("ms"));
    }
}
