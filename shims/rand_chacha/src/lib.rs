//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 block cipher used as
//! a counter-mode generator, seedable through the workspace `rand` shim's
//! [`SeedableRng`]. Deterministic per seed; streams are not guaranteed to be
//! bit-identical to upstream `rand_chacha`.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, 64-bit block counter, zero nonce.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key schedule words 4..12 of the ChaCha state.
    key: [u32; 8],
    /// Block counter (state words 12..14).
    counter: u64,
    /// Buffered output block.
    buf: [u32; 16],
    /// Next unread index into `buf`; 16 means exhausted.
    idx: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut s = [0u32; 16];
        s[..4].copy_from_slice(&CHACHA_CONST);
        s[4..12].copy_from_slice(&self.key);
        s[12] = self.counter as u32;
        s[13] = (self.counter >> 32) as u32;
        // s[14], s[15]: zero nonce.
        let input = s;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for (o, i) in s.iter_mut().zip(input.iter()) {
            *o = o.wrapping_add(*i);
        }
        self.buf = s;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        v
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let va: Vec<u32> = (0..64).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..64).map(|_| b.next_u32()).collect();
        assert_eq!(va, vb);
        let mut c = ChaCha8Rng::seed_from_u64(6);
        assert_ne!(va, (0..64).map(|_| c.next_u32()).collect::<Vec<_>>());
    }

    #[test]
    fn output_looks_uniform() {
        // Crude sanity: mean of many uniform floats near 0.5.
        let mut r = ChaCha8Rng::seed_from_u64(0);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn zero_block_differs_from_known_zero_state() {
        // The keystream must depend on the key.
        let mut a = ChaCha8Rng::from_seed([0u8; 32]);
        let mut b = ChaCha8Rng::from_seed([1u8; 32]);
        assert_ne!(a.next_u32(), b.next_u32());
    }
}
