//! Movie scenario: integrate a MetaQA-style KG (9 relation types) and check
//! transfer to open-form 1-hop QA ("tell me the director of …") — questions
//! phrased unlike any training template.
//!
//! ```text
//! cargo run --release --example movie_kg
//! ```

use infuserki::core::dataset::KiDataset;
use infuserki::core::detect::detect_unknown;
use infuserki::core::{train_infuserki, InfuserKiConfig, InfuserKiMethod, TrainConfig};
use infuserki::eval::downstream::{build_one_hop_items, eval_one_hop, sample_downstream_triples};
use infuserki::eval::evaluate_method;
use infuserki::eval::world::{build_world, Domain, WorldConfig};
use infuserki::kg::KgStats;
use infuserki::nn::NoHook;

fn main() {
    let mut cfg = WorldConfig::new(Domain::MetaQa, 200, 13);
    cfg.d_model = 48;
    cfg.n_layers = 8;
    cfg.d_ff = 128;
    let world = build_world(&cfg);
    println!("movie KG: {}", KgStats::of(&world.store));

    let det = detect_unknown(
        &world.base,
        &NoHook,
        &world.tokenizer,
        world.bank.template(0),
    );
    println!(
        "detection: {} known / {} unknown",
        det.known.len(),
        det.unknown.len()
    );

    let data = KiDataset::build(
        &world.store,
        &world.bank,
        &world.tokenizer,
        &det.known,
        &det.unknown,
        5,
    );
    let mut ik = InfuserKiMethod::new(
        InfuserKiConfig::for_model(world.base.n_layers()),
        &world.base,
        world.store.n_relations(),
    );
    println!("training InfuserKI on {} QA samples…", data.qa.len());
    train_infuserki(&world.base, &mut ik, &data, &TrainConfig::default());

    let triples = sample_downstream_triples(&world.store, 80, 6);
    let items = build_one_hop_items(&world.store, &triples);

    for (name, eval, one_hop) in [
        (
            "vanilla",
            evaluate_method(
                &world.base,
                &NoHook,
                &world.tokenizer,
                &world.bank,
                &det.known,
                &det.unknown,
            ),
            eval_one_hop(&world.base, &NoHook, &world.tokenizer, &items),
        ),
        (
            "InfuserKI",
            evaluate_method(
                &world.base,
                &ik.hook(),
                &world.tokenizer,
                &world.bank,
                &det.known,
                &det.unknown,
            ),
            eval_one_hop(&world.base, &ik.hook(), &world.tokenizer, &items),
        ),
    ] {
        println!(
            "{name:<10} NR {:.2}  RR {:.2}  F1_Unseen {:.2}  1-hop QA F1 {:.2}",
            eval.nr, eval.rr, eval.f1_unseen, one_hop
        );
    }
}
