//! Using your own knowledge graph: load a MetaQA-style `kb.txt`
//! (`subject|relation|object` per line), inspect it, and render the
//! multiple-choice questions the integration pipeline would train on.
//!
//! ```text
//! cargo run --release --example load_real_kg            # embedded demo data
//! cargo run --release --example load_real_kg -- kb.txt  # your file
//! ```

use infuserki::kg::io::{load_pipe_separated, parse_pipe_separated};
use infuserki::kg::KgStats;
use infuserki::text::templates::N_QA_TEMPLATES;
use infuserki::text::{format_mcq_prompt, McqBuilder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const DEMO_KB: &str = "\
the crimson voyage|directed_by|mira okafor
the crimson voyage|release_year|1994
the crimson voyage|has_genre|adventure
the crimson voyage|starred_actors|theo lindqvist
the hollow archive|directed_by|mira okafor
the hollow archive|release_year|2003
the hollow archive|has_genre|mystery
the hollow archive|starred_actors|clara moreau
the gilded monsoon|directed_by|pablo vargas
the gilded monsoon|release_year|1988
the gilded monsoon|has_genre|drama
the gilded monsoon|starred_actors|greta novak
the restless pendulum|directed_by|dana herrera
the restless pendulum|release_year|2011
the restless pendulum|has_genre|thriller
the restless pendulum|starred_actors|ivan braun
";

fn main() {
    let store = match std::env::args().nth(1) {
        Some(path) => load_pipe_separated(&path, true).expect("load kb file"),
        None => parse_pipe_separated(DEMO_KB, true).expect("demo kb parses"),
    };
    println!("loaded: {}", KgStats::of(&store));
    for r in store.relation_ids() {
        println!(
            "  relation '{}': {} triples, {} distinct tails",
            store.relation_name(r),
            store.triples_of_relation(r).len(),
            store.tail_pool(r).len()
        );
    }

    // Render the MCQs the detection/integration pipeline would use.
    let builder = McqBuilder::new(&store);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    println!("\nsample questions (template coverage: {N_QA_TEMPLATES} per relation):");
    for (i, &t) in store.triples().iter().take(3).enumerate() {
        let mcq = builder.build(t, i % N_QA_TEMPLATES, &mut rng);
        println!("\n{}", format_mcq_prompt(&mcq));
        println!(
            "   gold: ({}) {}",
            (b'a' + mcq.correct as u8) as char,
            mcq.answer()
        );
    }
}
