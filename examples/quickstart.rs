//! Quickstart: the full InfuserKI pipeline on a miniature world, in under a
//! minute on a laptop core.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Steps: generate a medical-style KG → pre-train a small base LM on part of
//! it → detect what the model knows → integrate the unknown knowledge with
//! infuser-gated adapters → measure NR (new knowledge learned) and RR (old
//! knowledge retained).

use infuserki::core::dataset::KiDataset;
use infuserki::core::detect::detect_unknown;
use infuserki::core::{train_infuserki, InfuserKiConfig, InfuserKiMethod, TrainConfig};
use infuserki::eval::evaluate_method;
use infuserki::eval::world::{build_world, Domain, WorldConfig};
use infuserki::nn::NoHook;

fn main() {
    // 1. A small world: 120-triplet UMLS-style KG, 45% of facts pre-trained
    //    into the base model (the model's "prior knowledge").
    let mut world_cfg = WorldConfig::new(Domain::Umls, 120, 7);
    world_cfg.d_model = 48;
    world_cfg.n_layers = 8;
    world_cfg.d_ff = 128;
    let world = build_world(&world_cfg);
    println!(
        "world: {} triplets, {} entities, vocab {}",
        world.store.len(),
        world.store.n_entities(),
        world.tokenizer.vocab_size()
    );

    // 2. Knowledge detection: ask the base model every MCQ; wrong answers
    //    mark unknown knowledge (the integration target).
    let det = detect_unknown(
        &world.base,
        &NoHook,
        &world.tokenizer,
        world.bank.template(0),
    );
    println!(
        "detection: {} known / {} unknown",
        det.known.len(),
        det.unknown.len()
    );

    // 3. Build the three-phase dataset and train InfuserKI (adapters stay
    //    outside the frozen base model).
    let data = KiDataset::build(
        &world.store,
        &world.bank,
        &world.tokenizer,
        &det.known,
        &det.unknown,
        1,
    );
    let ik_cfg = InfuserKiConfig::for_model(world.base.n_layers());
    let mut method = InfuserKiMethod::new(ik_cfg, &world.base, world.store.n_relations());
    println!("training ({} extra params)…", method.extra_params());
    let report = train_infuserki(&world.base, &mut method, &data, &TrainConfig::default());
    println!(
        "phase losses: infuser {:?}, qa {:?}, rc {:?}",
        report.infuser_losses, report.qa_losses, report.rc_losses
    );

    // 4. Evaluate: NR = accuracy on initially-unknown facts (reliability),
    //    RR = accuracy on initially-known facts (locality).
    let before = evaluate_method(
        &world.base,
        &NoHook,
        &world.tokenizer,
        &world.bank,
        &det.known,
        &det.unknown,
    );
    let after = evaluate_method(
        &world.base,
        &method.hook(),
        &world.tokenizer,
        &world.bank,
        &det.known,
        &det.unknown,
    );
    println!("\n            NR    RR    F1_Unseen");
    println!(
        "vanilla    {:.2}  {:.2}  {:.2}",
        before.nr, before.rr, before.f1_unseen
    );
    println!(
        "InfuserKI  {:.2}  {:.2}  {:.2}",
        after.nr, after.rr, after.f1_unseen
    );
}
