//! Inspect the infuser gates (Fig. 6 in miniature): after integration, the
//! per-layer infusing scores r^l should be high for questions about facts
//! the base model did *not* know (adapter knowledge needed) and low for
//! facts it already knew (adapter blocked, preventing forgetting).
//!
//! ```text
//! cargo run --release --example gate_inspection
//! ```

use infuserki::core::dataset::KiDataset;
use infuserki::core::detect::detect_unknown;
use infuserki::core::{train_infuserki, InfuserKiConfig, InfuserKiMethod, TrainConfig};
use infuserki::eval::probes::gate_profile;
use infuserki::eval::world::{build_world, Domain, WorldConfig};
use infuserki::nn::NoHook;

fn main() {
    let mut cfg = WorldConfig::new(Domain::Umls, 150, 23);
    cfg.d_model = 48;
    cfg.n_layers = 8;
    cfg.d_ff = 128;
    let world = build_world(&cfg);
    let det = detect_unknown(
        &world.base,
        &NoHook,
        &world.tokenizer,
        world.bank.template(0),
    );
    let data = KiDataset::build(
        &world.store,
        &world.bank,
        &world.tokenizer,
        &det.known,
        &det.unknown,
        8,
    );
    let mut method = InfuserKiMethod::new(
        InfuserKiConfig::for_model(world.base.n_layers()),
        &world.base,
        world.store.n_relations(),
    );
    println!("training…");
    train_infuserki(&world.base, &mut method, &data, &TrainConfig::default());

    let known: Vec<usize> = det.known.iter().take(40).copied().collect();
    let unknown: Vec<usize> = det.unknown.iter().take(40).copied().collect();
    let prof_known = gate_profile(&world.base, &method, &world.tokenizer, &world.bank, &known);
    let prof_unknown = gate_profile(
        &world.base,
        &method,
        &world.tokenizer,
        &world.bank,
        &unknown,
    );

    println!("\nper-layer mean infusing score r^l:");
    println!(
        "{:<7} {:>8} {:>9}  bar (unknown)",
        "layer", "known", "unknown"
    );
    for (i, &(layer, k)) in prof_known.iter().enumerate() {
        let u = prof_unknown[i].1;
        let bar = "#".repeat((u * 30.0) as usize);
        println!("{:<7} {:>8.3} {:>9.3}  {bar}", layer + 1, k, u);
    }
    let mk = prof_known.iter().map(|&(_, v)| v).sum::<f32>() / prof_known.len() as f32;
    let mu = prof_unknown.iter().map(|&(_, v)| v).sum::<f32>() / prof_unknown.len() as f32;
    println!(
        "\nmean gate: known {mk:.3} vs unknown {mu:.3} — the gap is what blocks interference \
         with existing knowledge."
    );
}
