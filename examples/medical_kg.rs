//! Medical scenario: integrate a UMLS-style knowledge graph into the base
//! model and check transfer to a PubMedQA-style yes/no downstream task —
//! the workload the paper's introduction motivates ("hospitals could tailor
//! models using their case data").
//!
//! ```text
//! cargo run --release --example medical_kg
//! ```

use infuserki::baselines::lora::{LoraConfig, LoraMethod};
use infuserki::baselines::train_patched;
use infuserki::core::dataset::KiDataset;
use infuserki::core::detect::detect_unknown;
use infuserki::core::{train_infuserki, InfuserKiConfig, InfuserKiMethod, TrainConfig};
use infuserki::eval::downstream::{build_yesno_items, eval_yesno, sample_downstream_triples};
use infuserki::eval::evaluate_method;
use infuserki::eval::world::{build_world, Domain, WorldConfig};
use infuserki::nn::{LayerHook, NoHook};

fn main() {
    let mut cfg = WorldConfig::new(Domain::Umls, 200, 11);
    cfg.d_model = 48;
    cfg.n_layers = 8;
    cfg.d_ff = 128;
    let world = build_world(&cfg);
    let det = detect_unknown(
        &world.base,
        &NoHook,
        &world.tokenizer,
        world.bank.template(0),
    );
    let data = KiDataset::build(
        &world.store,
        &world.bank,
        &world.tokenizer,
        &det.known,
        &det.unknown,
        2,
    );

    // InfuserKI.
    let mut ik = InfuserKiMethod::new(
        InfuserKiConfig::for_model(world.base.n_layers()),
        &world.base,
        world.store.n_relations(),
    );
    println!("training InfuserKI…");
    train_infuserki(&world.base, &mut ik, &data, &TrainConfig::default());

    // LoRA for contrast (same QA mix).
    let tc = TrainConfig::default();
    let mut lora = LoraMethod::new(LoraConfig::default(), &world.base);
    println!("training LoRA…");
    train_patched(
        &world.base,
        &mut lora,
        &data.qa,
        tc.epochs_qa,
        tc.lr,
        tc.batch,
        tc.seed,
    );

    // Downstream: PubMedQA-style yes/no items over sampled triples.
    let triples = sample_downstream_triples(&world.store, 80, 3);
    let items = build_yesno_items(&world.store, &triples, 4);

    println!("\nmethod      NR    RR    F1_Unseen  PubMedQA-sim");
    for (name, hook) in [
        ("vanilla", &NoHook as &dyn LayerHook),
        ("LoRA", &lora),
        ("InfuserKI", &ik),
    ] {
        let eval = evaluate_method(
            &world.base,
            hook,
            &world.tokenizer,
            &world.bank,
            &det.known,
            &det.unknown,
        );
        let ds = eval_yesno(&world.base, hook, &world.tokenizer, &items);
        println!(
            "{name:<10} {:>5.2} {:>5.2} {:>8.2} {:>10.2}",
            eval.nr, eval.rr, eval.f1_unseen, ds
        );
    }
    println!("\nExpected shape: InfuserKI matches LoRA on NR while keeping RR higher.");
}
