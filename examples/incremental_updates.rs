//! Incremental KG updates: integrate knowledge in arriving batches, skipping
//! whatever the patched model already answers — the paper's data-efficiency
//! story ("integrate unknown knowledge only") applied over time.
//!
//! ```text
//! cargo run --release --example incremental_updates
//! ```

use infuserki::core::dataset::McqBank;
use infuserki::core::detect::detect_unknown;
use infuserki::core::{integrate_more, InfuserKiConfig, InfuserKiMethod, TrainConfig};
use infuserki::eval::world::{build_world, Domain, WorldConfig};
use infuserki::kg::Triple;
use infuserki::nn::NoHook;

fn main() {
    let mut cfg = WorldConfig::new(Domain::Umls, 150, 31);
    cfg.d_model = 48;
    cfg.n_layers = 8;
    cfg.d_ff = 128;
    cfg.pretrain_epochs = 20;
    let world = build_world(&cfg);

    let mut method = InfuserKiMethod::new(
        InfuserKiConfig::for_model(world.base.n_layers()),
        &world.base,
        world.store.n_relations(),
    );
    let tc = TrainConfig::default();

    // The KG "arrives" in three batches; batch 3 overlaps batch 2 to show
    // the skip-known behaviour.
    let triples = world.store.triples();
    let batches: Vec<Vec<Triple>> = vec![
        triples[0..50].to_vec(),
        triples[50..100].to_vec(),
        triples[75..150].to_vec(), // 25 repeats + 50 new
    ];

    for (i, batch) in batches.iter().enumerate() {
        let report = integrate_more(
            &world.base,
            &mut method,
            &world.store,
            batch,
            &world.tokenizer,
            &tc,
        );
        println!(
            "batch {}: presented {}, already known {}, newly integrated {}",
            i + 1,
            report.presented,
            report.already_known,
            report.newly_integrated
        );
    }

    // Final check over the whole graph.
    let bank = McqBank::build(&world.store, world.store.triples(), 99);
    let final_det = detect_unknown(
        &world.base,
        &method.hook(),
        &world.tokenizer,
        bank.template(0),
    );
    let base_det = detect_unknown(&world.base, &NoHook, &world.tokenizer, bank.template(0));
    println!(
        "\nwhole-graph known rate: base {:.2} → after incremental integration {:.2}",
        base_det.known_rate(),
        final_det.known_rate()
    );
}
